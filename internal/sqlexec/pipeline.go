package sqlexec

import (
	"context"
	"math"
	"sort"

	"aggchecker/internal/db"
	"aggchecker/internal/vec"
)

// This file implements the shared block-oriented scan pipeline: the
// segmenter that turns a join view into zone-aligned scan segments, the
// vectorized predicate evaluator that produces reusable selection vectors
// per segment, and the direct-scan executor behind Engine.EvaluateContext.
// The cube kernel (kernel.go) drives its block loop through the same
// segmenter and the same zone verdicts, so naive-mode direct scans, the
// planner's small-group fallback, cube passes, and delta scans all share
// one fast path; the retired row-at-a-time closure matchers survive only
// as the differential-test oracle (pipeline_test.go).
//
// Ratio-aggregate base contract (the denominators of Percentage and
// ConditionalProbability), stated here once and matched bit-for-bit by
// CubeResult.Value's base cells:
//
//   - Percentage: the denominator accumulates every row of the joined
//     view; predicates restrict the numerator only.
//   - ConditionalProbability: the denominator accumulates exactly the rows
//     matching the conditioning predicate Preds[0] — not the full
//     conjunction, and never any other predicate subset. With no
//     predicates at all the denominator covers every row.
//
// Zone pruning must preserve these sets: a segment whose zones refute the
// numerator's conjunction still contributes its rows to a Percentage
// denominator, and still contributes its Preds[0] matches to a
// ConditionalProbability denominator unless the conditioning predicate
// itself is refuted.

// The default zone granularity matches the kernel block size, so default
// spans map 1:1 onto segments (negative array length = compile-time
// assertion). Coarser granularities (a compactor may reseal tables at
// db.ZoneRowsCoarse) are handled by segmentsOf splitting each oversized
// span into kernel-block-sized segments that share its zone index.
var _ [kernelBlockRows - db.ZoneRows]struct{}

// scanSeg is one segment of a scan: a run of joined rows processed as a
// unit, with the zone-map index that summarizes it (-1 when the view has
// no zones: materialized joins, or zone maps disabled).
type scanSeg struct {
	start, n int
	zone     int
}

// segmentsOf splits joined rows [lo, hi) into scan segments: zone-aligned
// runs (each at most kernelBlockRows rows, never crossing a sealed block)
// when spans are available, fixed kernelBlockRows chunks otherwise. Partial
// overlaps are clipped; a clipped or split segment keeps its zone index,
// because a zone's summary is conservative for any subset of its rows.
func segmentsOf(spans []db.ZoneSpan, lo, hi int) []scanSeg {
	if hi <= lo {
		return nil
	}
	if spans == nil {
		segs := make([]scanSeg, 0, (hi-lo+kernelBlockRows-1)/kernelBlockRows)
		for s := lo; s < hi; s += kernelBlockRows {
			n := hi - s
			if n > kernelBlockRows {
				n = kernelBlockRows
			}
			segs = append(segs, scanSeg{start: s, n: n, zone: -1})
		}
		return segs
	}
	first := sort.Search(len(spans), func(i int) bool { return spans[i].End > lo })
	var segs []scanSeg
	for i := first; i < len(spans) && spans[i].Start < hi; i++ {
		s, e := spans[i].Start, spans[i].End
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		// Spans coarser than the kernel block size (compacted tables) split
		// into kernel-sized segments; each keeps the span's zone index, so
		// one zone verdict prunes (or admits) all of them consistently.
		for ; s < e; s += kernelBlockRows {
			n := e - s
			if n > kernelBlockRows {
				n = kernelBlockRows
			}
			segs = append(segs, scanSeg{start: s, n: n, zone: i})
		}
	}
	return segs
}

// predEval is one compiled equality predicate: the accessor, the literal
// resolved to its storage representation, and the column's zone maps.
type predEval struct {
	acc   db.ColumnAccessor
	zones []db.ZoneEntry
	isStr bool
	code  int32   // string columns: dictionary code of the literal
	val   float64 // numeric columns: parsed literal value
	// never marks literals that cannot match any row ever: a string absent
	// from the dictionary, or an unparseable numeric literal.
	never bool
}

// compilePreds resolves the query predicates against the view. Zone maps
// are attached only when requested and available (direct accessors).
func compilePreds(view *db.JoinView, preds []Predicate, useZones bool) ([]predEval, error) {
	out := make([]predEval, len(preds))
	for i, p := range preds {
		acc, err := view.Accessor(p.Col.Table, p.Col.Column)
		if err != nil {
			return nil, err
		}
		pe := predEval{acc: acc, isStr: acc.Column().Kind == db.KindString}
		if useZones {
			pe.zones = acc.Zones()
		}
		if pe.isStr {
			pe.code = acc.Column().CodeOf(p.Value)
			pe.never = pe.code < 0
		} else {
			v, err := parseLiteralFloat(p.Value)
			if err != nil {
				pe.never = true
			} else {
				pe.val = v
			}
		}
		out[i] = pe
	}
	return out, nil
}

// zoneMisses reports whether the predicate provably matches no row of zone
// zi: a never-matching literal, a dictionary code outside the zone's
// domain bitset, or a numeric literal outside the zone's min/max range.
func (pe *predEval) zoneMisses(zi int) bool {
	if pe.never {
		return true
	}
	if pe.zones == nil || zi < 0 {
		return false
	}
	z := &pe.zones[zi]
	if pe.isStr {
		return !z.MayContainCode(pe.code)
	}
	return !z.MayContainFloat(pe.val)
}

// selectFull fills sel with the in-segment row offsets matching the
// predicate. sel must have capacity for n entries; fBuf/cBuf are gather
// scratch (unused on the zero-copy path). The compare runs through the
// dispatched vec kernels — a bitmask compare plus mask-to-index
// compaction, both branch-free — and produces the same ascending indexes
// as the retired scalar loop (vec compares are Go == semantics: NaN never
// matches, ±0 match each other).
func (pe *predEval) selectFull(start, n int, sel []int32, fBuf []float64, cBuf []int32) []int32 {
	// Segments never exceed kernelBlockRows (segmentsOf splits oversized
	// spans), so the mask fits a fixed stack buffer.
	var maskArr [kernelBlockRows / 64]uint64
	mask := maskArr[:vec.MaskWords(n)]
	if pe.isStr {
		codes, _ := pe.acc.CodeBlock(start, n, cBuf)
		vec.CmpEqI32(codes, pe.code, mask)
	} else {
		vals, _ := pe.acc.FloatBlock(start, n, fBuf)
		vec.CmpEqF64(vals, pe.val, mask)
	}
	return sel[:vec.SelFromMask(mask, n, sel)]
}

// refine compacts sel in place, keeping only rows the predicate also
// matches.
func (pe *predEval) refine(start, n int, sel []int32, fBuf []float64, cBuf []int32) []int32 {
	k := 0
	if pe.isStr {
		codes, _ := pe.acc.CodeBlock(start, n, cBuf)
		want := pe.code
		for _, r := range sel {
			if codes[r] == want {
				sel[k] = r
				k++
			}
		}
	} else {
		vals, _ := pe.acc.FloatBlock(start, n, fBuf)
		want := pe.val
		for _, r := range sel {
			if vals[r] == want {
				sel[k] = r
				k++
			}
		}
	}
	return sel[:k]
}

// aggReader reads the aggregation column of a direct scan and folds rows
// into accumulators with exactly the per-row semantics of
// accumulator.addRow, in row order — so results are bit-for-bit identical
// to the retired row-at-a-time path even for float sums.
type aggReader struct {
	star  bool
	acc   db.ColumnAccessor
	isStr bool
}

// addAll folds every row of the segment into a.
func (g *aggReader) addAll(a *accumulator, start, n int, fBuf []float64, cBuf []int32) {
	if g.star {
		a.rows += int64(n)
		a.nonNull += int64(n)
		if a.distinct != nil && n > 0 {
			a.distinct[0] = struct{}{}
		}
		return
	}
	if g.isStr {
		codes, _ := g.acc.CodeBlock(start, n, cBuf)
		for _, c := range codes {
			a.rows++
			if c < 0 {
				continue
			}
			a.nonNull++
			if a.distinct != nil {
				a.distinct[uint64(uint32(c))] = struct{}{}
			}
		}
		return
	}
	vals, _ := g.acc.FloatBlock(start, n, fBuf)
	g.addFloats(a, vals)
}

// addSel folds the selected rows of the segment into a.
func (g *aggReader) addSel(a *accumulator, start, n int, sel []int32, fBuf []float64, cBuf []int32) {
	if len(sel) == 0 {
		return
	}
	if g.star {
		a.rows += int64(len(sel))
		a.nonNull += int64(len(sel))
		if a.distinct != nil {
			a.distinct[0] = struct{}{}
		}
		return
	}
	if g.isStr {
		codes, _ := g.acc.CodeBlock(start, n, cBuf)
		for _, r := range sel {
			c := codes[r]
			a.rows++
			if c < 0 {
				continue
			}
			a.nonNull++
			if a.distinct != nil {
				a.distinct[uint64(uint32(c))] = struct{}{}
			}
		}
		return
	}
	vals, _ := g.acc.FloatBlock(start, n, fBuf)
	s, mn, mx := a.sum, a.min, a.max
	for _, r := range sel {
		v := vals[r]
		a.rows++
		if v != v { // NULL
			continue
		}
		a.nonNull++
		s += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		if a.distinct != nil {
			a.distinct[math.Float64bits(v)] = struct{}{}
		}
	}
	a.sum, a.min, a.max = s, mn, mx
}

// addFloats is the numeric whole-segment loop shared by addAll.
func (g *aggReader) addFloats(a *accumulator, vals []float64) {
	s, mn, mx := a.sum, a.min, a.max
	for _, v := range vals {
		a.rows++
		if v != v { // NULL
			continue
		}
		a.nonNull++
		s += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		if a.distinct != nil {
			a.distinct[math.Float64bits(v)] = struct{}{}
		}
	}
	a.sum, a.min, a.max = s, mn, mx
}

// directScan is the compiled form of one direct query: predicates resolved
// to storage-level comparisons, the aggregation column reader, and the
// zone-aligned segmentation. It is immutable after construction, so
// morsels of one scan share it across workers.
type directScan struct {
	q        Query
	preds    []predEval
	agg      aggReader
	needBase bool
	spans    []db.ZoneSpan
}

func newDirectScan(view *db.JoinView, q Query, useZones bool) (*directScan, error) {
	preds, err := compilePreds(view, q.Preds, useZones)
	if err != nil {
		return nil, err
	}
	ds := &directScan{q: q, preds: preds}
	ds.agg.star = q.AggCol.IsStar()
	if !ds.agg.star {
		acc, err := view.Accessor(q.AggCol.Table, q.AggCol.Column)
		if err != nil {
			return nil, err
		}
		ds.agg.acc = acc
		ds.agg.isStr = acc.Column().Kind == db.KindString
	}
	ds.needBase = q.Agg == Percentage || q.Agg == ConditionalProbability
	if useZones {
		ds.spans = view.ZoneSpans()
	}
	return ds, nil
}

// directPartial is the result of scanning one row range of a direct query:
// the numerator and (ratio aggregates) denominator accumulators plus the
// pipeline counters of the range.
type directPartial struct {
	main, base *accumulator

	scanned, pruned, selReuses, rowsRead int64
}

// merge folds a later row range's partial into p (p first, preserving
// scan-order semantics of summation and min/max ties).
func (p *directPartial) merge(o *directPartial) {
	p.main = addAccumulators(p.main, o.main)
	if p.base != nil || o.base != nil {
		p.base = addAccumulators(p.base, o.base)
	}
	p.scanned += o.scanned
	p.pruned += o.pruned
	p.selReuses += o.selReuses
	p.rowsRead += o.rowsRead
}

// scanRange runs the compiled scan over joined rows [lo, hi) into a fresh
// partial: each segment is zone-tested before any data is read, survivors
// are filtered through a reused selection vector, and the aggregation
// column is folded in row order.
func (ds *directScan) scanRange(ctx context.Context, lo, hi int) (*directPartial, error) {
	q, preds, agg, needBase := ds.q, ds.preds, ds.agg, ds.needBase
	pt := &directPartial{main: newAccumulator(q.Agg == CountDistinct)}
	main := pt.main
	var base *accumulator
	if needBase {
		base = newAccumulator(false)
		pt.base = base
	}

	segs := segmentsOf(ds.spans, lo, hi)
	selBuf := make([]int32, kernelBlockRows)
	fBuf := make([]float64, kernelBlockRows)
	cBuf := make([]int32, kernelBlockRows)

	var scanned, pruned, selReuses, rowsRead int64
	selUsed := false
	useSel := func() {
		if selUsed {
			selReuses++
		}
		selUsed = true
	}
	for _, sg := range segs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mainMiss := false
		for i := range preds {
			if preds[i].zoneMisses(sg.zone) {
				mainMiss = true
				break
			}
		}
		if mainMiss {
			// The numerator is provably empty in this segment; only the
			// denominator of a ratio aggregate may still need rows.
			pruned++
			if !needBase {
				continue
			}
			switch q.Agg {
			case Percentage:
				// Every row stays in the denominator. The star case is a
				// pure batched count; only non-star reads the column.
				if !agg.star {
					rowsRead += int64(sg.n)
				}
				agg.addAll(base, sg.start, sg.n, fBuf, cBuf)
			case ConditionalProbability:
				if len(preds) == 0 {
					agg.addAll(base, sg.start, sg.n, fBuf, cBuf)
					continue
				}
				if preds[0].zoneMisses(sg.zone) {
					continue // the conditioning predicate is refuted too
				}
				useSel()
				rowsRead += int64(sg.n)
				sel := preds[0].selectFull(sg.start, sg.n, selBuf, fBuf, cBuf)
				agg.addSel(base, sg.start, sg.n, sel, fBuf, cBuf)
			}
			continue
		}

		scanned++
		rowsRead += int64(sg.n)
		selFull := len(preds) == 0
		var sel []int32
		if !selFull {
			useSel()
			sel = preds[0].selectFull(sg.start, sg.n, selBuf, fBuf, cBuf)
			if q.Agg == ConditionalProbability && needBase {
				// The denominator consumes the conditioning predicate's
				// matches before the remaining predicates refine them away.
				agg.addSel(base, sg.start, sg.n, sel, fBuf, cBuf)
			}
			for i := 1; i < len(preds) && len(sel) > 0; i++ {
				sel = preds[i].refine(sg.start, sg.n, sel, fBuf, cBuf)
			}
		}
		if needBase && (q.Agg == Percentage || (q.Agg == ConditionalProbability && selFull)) {
			agg.addAll(base, sg.start, sg.n, fBuf, cBuf)
		}
		if selFull {
			agg.addAll(main, sg.start, sg.n, fBuf, cBuf)
		} else {
			agg.addSel(main, sg.start, sg.n, sel, fBuf, cBuf)
		}
	}

	pt.scanned, pt.pruned, pt.selReuses, pt.rowsRead = scanned, pruned, selReuses, rowsRead
	return pt, nil
}

// evaluateDirect runs one query with a dedicated vectorized scan over the
// view. Results are bit-for-bit identical to a row-at-a-time scan: zone
// pruning only skips rows that contribute to neither the numerator nor the
// denominator, and all accumulation runs in row order. Large views on an
// engine with a shared scheduler decompose into zone-aligned morsels whose
// partial accumulators merge in range order — deterministic for any worker
// count, bit-for-bit identical to the single-threaded scan for
// integer-valued data (float sums regroup at morsel boundaries).
func (e *Engine) evaluateDirect(ctx context.Context, view *db.JoinView, q Query) (float64, error) {
	ds, err := newDirectScan(view, q, e.zoneMapsFor(ctx))
	if err != nil {
		return math.NaN(), err
	}
	total, err := e.runDirect(ctx, view, ds)
	if err != nil {
		return math.NaN(), err
	}
	return total.main.finalize(q.Agg, ds.agg.star, total.base), nil
}

// runDirect executes a compiled direct scan over the whole view — morsel
// split on the shared scheduler when wide enough, single-threaded otherwise
// — records the pipeline stats, and returns the merged partial. Shared by
// evaluateDirect (which finalizes) and ScanPartialContext (which exports
// the partial to a shard coordinator).
func (e *Engine) runDirect(ctx context.Context, view *db.JoinView, ds *directScan) (*directPartial, error) {
	n := view.NumRows()
	var total *directPartial
	sched := e.sched.Load()
	if workers := e.resolveScanWorkers(e.rawScanWorkersFor(ctx)); sched != nil && workers > 1 && n >= kernelParallelMinRows {
		if ranges := morselRanges(ds.spans, 0, n, workers); len(ranges) > 1 {
			partials := make([]*directPartial, len(ranges))
			err := sched.Run(ctx, &e.Stats, len(ranges), workers, func(i int) error {
				pt, err := ds.scanRange(ctx, ranges[i].lo, ranges[i].hi)
				if err != nil {
					return err
				}
				partials[i] = pt
				return nil
			})
			if err != nil {
				return nil, err
			}
			total = partials[0]
			for _, pt := range partials[1:] {
				total.merge(pt)
			}
		}
	}
	if total == nil {
		var err error
		if total, err = ds.scanRange(ctx, 0, n); err != nil {
			return nil, err
		}
	}

	e.Stats.DirectVectorScans.Add(1)
	e.Stats.BlocksScanned.Add(total.scanned)
	e.Stats.BlocksPruned.Add(total.pruned)
	e.Stats.SelvecReuses.Add(total.selReuses)
	e.Stats.RowsScanned.Add(total.rowsRead)
	return total, nil
}
