package sqlexec

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"aggchecker/internal/db"
)

// Tests for incremental cube maintenance: a cached cube at snapshot version
// N is advanced to N+1 by scanning only the appended blocks and merging the
// partial into the published result. The differential tests assert the
// delta-merged cube is bit-for-bit identical to a from-scratch rebuild at
// every version of randomized append schedules; data is integer-valued
// (like the parallel-partials tests) so float sums are exact under any
// association order and bit-for-bit comparison is valid.

// appendRandomRows stages and returns n rows for the diff schema's fact
// table "f" (columns s1, s2, n1, n2, k), drawn from the same distributions
// randomDiffSchema uses — plus occasional brand-new string values, so
// appends grow the dictionary and the delta kernel's lookup tables are
// exercised against codes the cached cube never saw.
func appendRandomRows(t *testing.T, d *db.Database, rng *rand.Rand, n int) {
	t.Helper()
	sVals0 := []string{"p", "q", "r", "s"}
	sVals1 := []string{"u", "v", "w"}
	dimKeys := []string{"k0", "k1", "k2", "k3", "k4"}
	rows := make([][]any, n)
	for i := range rows {
		var s1 any = sVals0[rng.Intn(len(sVals0))]
		if rng.Intn(10) == 0 {
			s1 = nil
		}
		var s2 any = sVals1[rng.Intn(len(sVals1))]
		if rng.Intn(7) == 0 {
			s2 = "fresh" + strconv.Itoa(rng.Intn(5))
		}
		var n1 any = float64(rng.Intn(40))
		if rng.Intn(8) == 0 {
			n1 = nil
		}
		n2 := float64(rng.Intn(6))
		var k any = dimKeys[rng.Intn(len(dimKeys))]
		switch rng.Intn(12) {
		case 0:
			k = nil
		case 1:
			k = "dangling"
		}
		rows[i] = []any{s1, s2, n1, n2, k}
	}
	if err := d.Append("f", rows...); err != nil {
		t.Fatal(err)
	}
}

// reqsFor converts a random tracked-column draw into aggregate requests
// that trackedColsFor maps back onto exactly the same columns and flags.
func reqsFor(cols []trackedCol) []AggRequest {
	reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}}
	for _, tc := range cols {
		if tc.needDistinct {
			reqs = append(reqs, AggRequest{Fn: CountDistinct, Col: tc.ref})
		} else {
			reqs = append(reqs, AggRequest{Fn: Sum, Col: tc.ref})
		}
	}
	return reqs
}

// TestDeltaMergeDifferentialRandomized drives randomized append schedules
// through a caching engine and asserts, at every published version, that
// the delta-merged cube equals a from-scratch rebuild bit for bit. Every
// third trial forces the scalar kernel so the scalar delta-range path is
// differentially covered too.
func TestDeltaMergeDifferentialRandomized(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 4
	}
	ctx := context.Background()
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		sc := randomDiffSchema(rng, 200+rng.Intn(400), false, true)
		dims, cols := randomCubeSpec(rng, sc)
		reqs := reqsFor(cols)
		scalar := trial%3 == 0

		e := NewEngine(sc.d)
		e.Tune(WithScalarKernel(scalar))
		if _, err := e.CubeFor(sc.tables, dims, reqs); err != nil {
			t.Fatal(err)
		}

		versions := 2 + rng.Intn(4)
		for v := 0; v < versions; v++ {
			commits := 1 + rng.Intn(3)
			for c := 0; c < commits; c++ {
				appendRandomRows(t, sc.d, rng, 1+rng.Intn(60))
				if _, err := sc.d.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			label := fmt.Sprintf("trial %d version %d (scalar=%v dims=%d cols=%d commits=%d)",
				trial, v, scalar, len(dims), len(cols), commits)

			deltasBefore := e.Stats.DeltaScans.Load()
			blocksBefore := e.Stats.BlocksDelta.Load()
			got, err := e.CubeFor(sc.tables, dims, reqs)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if d := e.Stats.DeltaScans.Load() - deltasBefore; d != 1 {
				t.Fatalf("%s: delta scans = %d, want 1", label, d)
			}
			if b := e.Stats.BlocksDelta.Load() - blocksBefore; b != int64(commits) {
				t.Fatalf("%s: blocks delta = %d, want %d (one per commit)", label, b, commits)
			}
			if e.Stats.FullRebuilds.Load() != 0 {
				t.Fatalf("%s: full rebuilds = %d, want 0", label, e.Stats.FullRebuilds.Load())
			}

			view, err := db.BuildSnapshotView(sc.d.Snapshot(), sc.tables)
			if err != nil {
				t.Fatal(err)
			}
			var want *CubeResult
			if scalar {
				want, err = computeCubeScalar(ctx, view, sc.tables, dims, trackedColsFor(reqs))
			} else {
				want, err = computeCubeVectorized(ctx, view, sc.tables, dims, trackedColsFor(reqs), passConfig{workers: 1, zones: true})
			}
			if err != nil {
				t.Fatalf("%s: rebuild: %v", label, err)
			}
			requireCubesIdentical(t, want, got, label)
		}
	}
}

// TestConcurrentAppendAndScan hammers one engine with readers while a
// writer keeps appending and committing. Run under -race this proves the
// copy-on-write snapshot contract: readers mid-check keep a consistent
// view, and every observed row count is one the writer actually published.
func TestConcurrentAppendAndScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sc := randomDiffSchema(rng, 300, false, true)
	e := NewEngine(sc.d)
	dims := []DimSpec{{Col: ColumnRef{Table: "f", Column: "s1"}, Literals: []string{"p", "q", "r"}}}
	reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}, {Fn: Sum, Col: ColumnRef{Table: "f", Column: "n2"}}}
	if _, err := e.CubeFor([]string{"f"}, dims, reqs); err != nil {
		t.Fatal(err)
	}

	// published tracks row counts the writer has committed (guarded: the
	// writer records each count before the commit that publishes it, so any
	// count a reader can observe is already in the set).
	var pubMu sync.Mutex
	published := map[int]bool{300: true}
	isPublished := func(n int) bool {
		pubMu.Lock()
		defer pubMu.Unlock()
		return published[n]
	}
	done := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		defer close(done)
		wrng := rand.New(rand.NewSource(8))
		rows := 300
		for i := 0; i < 25; i++ {
			n := 1 + wrng.Intn(40)
			appendRandomRows(t, sc.d, wrng, n)
			rows += n
			pubMu.Lock()
			published[rows] = true
			pubMu.Unlock()
			if _, err := sc.d.Commit(); err != nil {
				writerErr <- err
				return
			}
		}
	}()

	var readersDone sync.WaitGroup
	for g := 0; g < 4; g++ {
		readersDone.Add(1)
		go func(g int) {
			defer readersDone.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				cube, err := e.CubeFor([]string{"f"}, dims, reqs)
				if err != nil {
					t.Error(err)
					return
				}
				total, ok := cube.Value(Query{Agg: Count})
				if !ok {
					t.Error("cube cannot answer Count(*)")
					return
				}
				if !isPublished(int(total)) {
					t.Errorf("reader %d observed unpublished row count %v", g, total)
					return
				}
			}
		}(g)
	}
	<-done
	readersDone.Wait()
	select {
	case err := <-writerErr:
		t.Fatal(err)
	default:
	}
}

// TestEngineDeltaScanCounts is the acceptance check for incremental
// maintenance accounting: after k commits to a database with a cached
// single-table cube, one re-check performs exactly one delta scan covering
// exactly the k appended blocks and their rows — sealed blocks are never
// rescanned, and no full cube pass runs.
func TestEngineDeltaScanCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sc := randomDiffSchema(rng, 500, false, true)
	e := NewEngine(sc.d)
	dims := []DimSpec{{Col: ColumnRef{Table: "f", Column: "s1"}, Literals: []string{"p", "q"}}}
	reqs := []AggRequest{
		{Fn: Count, Col: ColumnRef{}},
		{Fn: Sum, Col: ColumnRef{Table: "f", Column: "n1"}},
		{Fn: CountDistinct, Col: ColumnRef{Table: "f", Column: "s2"}},
	}
	if _, err := e.CubeFor([]string{"f"}, dims, reqs); err != nil {
		t.Fatal(err)
	}

	const kBlocks = 3
	appended := 0
	for i := 0; i < kBlocks; i++ {
		n := 20 + 10*i
		appendRandomRows(t, sc.d, rng, n)
		appended += n
		if _, err := sc.d.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	before := e.Stats.Snapshot()
	cube, err := e.CubeFor([]string{"f"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats.Snapshot()
	if got := s["delta_scans"] - before["delta_scans"]; got != 1 {
		t.Errorf("delta scans = %d, want 1", got)
	}
	if got := s["blocks_delta"] - before["blocks_delta"]; got != kBlocks {
		t.Errorf("blocks delta = %d, want %d", got, kBlocks)
	}
	if got := s["rows_scanned"] - before["rows_scanned"]; got != int64(appended) {
		t.Errorf("rows scanned by the advance = %d, want %d (sealed blocks must not be rescanned)", got, appended)
	}
	if got := s["cube_passes"] - before["cube_passes"]; got != 0 {
		t.Errorf("full cube passes during advance = %d, want 0", got)
	}
	if got := s["full_rebuilds"] - before["full_rebuilds"]; got != 0 {
		t.Errorf("full rebuilds = %d, want 0", got)
	}

	// The merged cube answers exactly like dedicated scans over the new
	// snapshot.
	check := NewEngine(sc.d)
	for _, q := range []Query{
		{Agg: Count, Preds: []Predicate{{Col: dims[0].Col, Value: "p"}}},
		{Agg: Sum, AggCol: ColumnRef{Table: "f", Column: "n1"}, Preds: []Predicate{{Col: dims[0].Col, Value: "q"}}},
		{Agg: CountDistinct, AggCol: ColumnRef{Table: "f", Column: "s2"}},
	} {
		want, err := check.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := cube.Value(q)
		if !ok || !eqNaN(got, want) {
			t.Errorf("query %s: cube=%v (ok=%v) direct=%v", q.Key(), got, ok, want)
		}
	}

	// Re-requesting at the same version is a pure cache hit: no scans.
	before = e.Stats.Snapshot()
	if _, err := e.CubeFor([]string{"f"}, dims, reqs); err != nil {
		t.Fatal(err)
	}
	s = e.Stats.Snapshot()
	if s["rows_scanned"] != before["rows_scanned"] || s["delta_scans"] != before["delta_scans"] {
		t.Error("same-version re-request scanned rows")
	}
	if s["cache_hits"] != before["cache_hits"]+1 {
		t.Errorf("cache hits = %d, want %d", s["cache_hits"], before["cache_hits"]+1)
	}
}

// TestPinnedSnapshotConsistentAcrossCommit verifies WithSnapshot: a
// request pinned to version N keeps reading exactly N's rows after later
// commits were absorbed into the cache, and serving it never regresses the
// newer published cube state.
func TestPinnedSnapshotConsistentAcrossCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	sc := randomDiffSchema(rng, 300, false, true)
	e := NewEngine(sc.d)
	dims := []DimSpec{{Col: ColumnRef{Table: "f", Column: "s1"}, Literals: []string{"p"}}}
	reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}}
	countAll := Query{Agg: Count}

	pinned := WithSnapshot(context.Background(), sc.d.Snapshot())
	cube, err := e.CubeForContext(pinned, []string{"f"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := cube.Value(countAll); v != 300 {
		t.Fatalf("initial Count(*) = %v, want 300", v)
	}

	appendRandomRows(t, sc.d, rng, 40)
	if _, err := sc.d.Commit(); err != nil {
		t.Fatal(err)
	}

	// An unpinned request absorbs the commit by delta scan.
	fresh, err := e.CubeForContext(context.Background(), []string{"f"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := fresh.Value(countAll); v != 340 {
		t.Fatalf("advanced Count(*) = %v, want 340", v)
	}

	// The pinned reader still sees its own version — for cube requests and
	// direct scans alike.
	stale, err := e.CubeForContext(pinned, []string{"f"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := stale.Value(countAll); v != 300 {
		t.Fatalf("pinned Count(*) = %v, want 300 (one version per request)", v)
	}
	if v, err := e.EvaluateContext(pinned, countAll); err != nil || v != 300 {
		t.Fatalf("pinned direct scan = %v (%v), want 300", v, err)
	}

	// Serving the stale reader must not regress the published state: the
	// next unpinned request is a pure hit at the new version.
	before := e.Stats.Snapshot()
	again, err := e.CubeForContext(context.Background(), []string{"f"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := again.Value(countAll); v != 340 {
		t.Fatalf("post-stale Count(*) = %v, want 340", v)
	}
	s := e.Stats.Snapshot()
	if s["rows_scanned"] != before["rows_scanned"] || s["delta_scans"] != before["delta_scans"] || s["full_rebuilds"] != before["full_rebuilds"] {
		t.Error("stale read regressed the published cube state")
	}
}

// TestEngineDeltaRepublishAndRebuild covers the two non-scan advances: a
// commit that misses the cube's scope republishes the cached result without
// scanning, and a joined-scope cube (where appends can rewrite earlier
// joined rows) takes the counted full-rebuild path instead of a delta.
func TestEngineDeltaRepublishAndRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	sc := randomDiffSchema(rng, 400, true, true) // two tables: f + dim
	e := NewEngine(sc.d)
	fDims := []DimSpec{{Col: ColumnRef{Table: "f", Column: "s1"}, Literals: []string{"p"}}}
	reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}}
	single, err := e.CubeFor([]string{"f"}, fDims, reqs)
	if err != nil {
		t.Fatal(err)
	}

	// Commit rows into dim only: the f-scope cube is still exact and must
	// be republished at the new version without any scan.
	if err := sc.d.Append("dim", []any{"k9", "red", 90.0}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.d.Commit(); err != nil {
		t.Fatal(err)
	}
	before := e.Stats.Snapshot()
	again, err := e.CubeFor([]string{"f"}, fDims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats.Snapshot()
	if again != single {
		t.Error("advance without appended rows should republish the identical result")
	}
	if s["rows_scanned"] != before["rows_scanned"] || s["delta_scans"] != before["delta_scans"] || s["full_rebuilds"] != before["full_rebuilds"] {
		t.Error("republish path scanned or rebuilt")
	}

	// A joined-scope cube cannot delta: appends to f force a full rebuild.
	jDims := []DimSpec{{Col: ColumnRef{Table: "dim", Column: "ds"}, Literals: []string{"red", "green"}}}
	if _, err := e.CubeFor(sc.tables, jDims, reqs); err != nil {
		t.Fatal(err)
	}
	appendRandomRows(t, sc.d, rng, 30)
	if _, err := sc.d.Commit(); err != nil {
		t.Fatal(err)
	}
	before = e.Stats.Snapshot()
	joined, err := e.CubeFor(sc.tables, jDims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	s = e.Stats.Snapshot()
	if got := s["full_rebuilds"] - before["full_rebuilds"]; got != 1 {
		t.Errorf("joined-scope advance full rebuilds = %d, want 1", got)
	}
	if got := s["delta_scans"] - before["delta_scans"]; got != 0 {
		t.Errorf("joined-scope advance delta scans = %d, want 0", got)
	}
	// And it is correct: identical to a fresh full pass over the same
	// joined scope at the new snapshot.
	fresh, err := NewEngine(sc.d).CubeFor(sc.tables, jDims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	requireCubesIdentical(t, fresh, joined, "joined rebuild")
}

// TestDeltaZoneMapPruning is the delta-aware zone map test: a cached cube
// whose dimension literals are confined to the initially sealed rows is
// advanced through appends that miss every tracked literal. Each delta
// block must take the batched rolled-up update (counted in blocks_pruned)
// rather than the per-row coding loops, and the advanced cube must stay
// bit-for-bit identical to a from-scratch rebuild at every version.
func TestDeltaZoneMapPruning(t *testing.T) {
	band := db.NewStringColumn("band")
	num := db.NewFloatColumn("num")
	val := db.NewFloatColumn("val")
	d := db.NewDatabase("deltazone")
	d.MustAddTable(db.MustNewTable("t", band, num, val))
	seed := make([][]any, 400)
	for i := range seed {
		seed[i] = []any{"base", float64(i % 50), float64(i)}
	}
	if err := d.Append("t", seed...); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}

	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	dims := []DimSpec{
		{Col: cr("band"), Literals: []string{"base"}},
		{Col: cr("num"), Literals: []string{"7", "11"}},
	}
	reqs := []AggRequest{
		{Fn: Count, Col: ColumnRef{}},
		{Fn: Sum, Col: cr("val")},
		{Fn: CountDistinct, Col: cr("val")},
	}
	e := NewEngine(d)
	if _, err := e.CubeFor([]string{"t"}, dims, reqs); err != nil {
		t.Fatal(err)
	}

	const commits = 4
	for c := 0; c < commits; c++ {
		// Appended rows carry a fresh band and out-of-range numerics: the
		// delta blocks' zones refute every tracked literal.
		rows := make([][]any, 100)
		for i := range rows {
			rows[i] = []any{"app" + strconv.Itoa(c), float64(1000 + i), float64(c*1000 + i)}
		}
		if err := d.Append("t", rows...); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Commit(); err != nil {
			t.Fatal(err)
		}
		before := e.Stats.Snapshot()
		adv, err := e.CubeFor([]string{"t"}, dims, reqs)
		if err != nil {
			t.Fatal(err)
		}
		s := e.Stats.Snapshot()
		if got := s["delta_scans"] - before["delta_scans"]; got != 1 {
			t.Fatalf("commit %d: delta_scans = %d, want 1", c, got)
		}
		if got := s["blocks_pruned"] - before["blocks_pruned"]; got != 1 {
			t.Errorf("commit %d: delta blocks_pruned = %d, want 1 (rolled-up batch update)", c, got)
		}
		if got := s["blocks_scanned"] - before["blocks_scanned"]; got != 0 {
			t.Errorf("commit %d: delta blocks_scanned = %d, want 0", c, got)
		}
		fresh, err := NewEngine(d).CubeFor([]string{"t"}, dims, reqs)
		if err != nil {
			t.Fatal(err)
		}
		requireCubesIdentical(t, fresh, adv, "delta-pruned advance commit "+strconv.Itoa(c))
	}
}
