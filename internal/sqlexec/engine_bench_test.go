package sqlexec

import (
	"context"
	"math/rand"
	"testing"
)

// benchBatch builds an overlapping candidate workload in the shape the EM
// loop produces: many queries over few predicate columns and literals.
func benchBatch(n int, seed int64) []Query {
	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	avals := []string{"p", "q", "r", "s"}
	bvals := []string{"u", "v", "w"}
	fns := []AggFunc{Count, Sum, Avg, Min, Max, CountDistinct, Percentage}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, n)
	for i := range out {
		var preds []Predicate
		if rng.Intn(2) == 0 {
			preds = append(preds, Predicate{Col: cr("a"), Value: avals[rng.Intn(len(avals))]})
		}
		if rng.Intn(2) == 0 {
			preds = append(preds, Predicate{Col: cr("b"), Value: bvals[rng.Intn(len(bvals))]})
		}
		fn := fns[rng.Intn(len(fns))]
		q := Query{Agg: fn, Preds: preds}
		if fn.NeedsNumericColumn() || fn == CountDistinct {
			q.AggCol = cr("x")
		}
		out[i] = q
	}
	return out
}

// BenchmarkEngineConcurrentBatches measures the shared engine under the
// document-checking access pattern: many goroutines submitting overlapping
// batches against one cache. Sharding plus singleflight keep the goroutines
// off each other's locks; Stats (dedups, lock waits) profile the run.
func BenchmarkEngineConcurrentBatches(b *testing.B) {
	d := stressDB(b, 20000)
	pool := map[string][]string{
		"t.a": {"p", "q", "r", "s"},
		"t.b": {"u", "v", "w"},
	}
	e := NewEngine(d)
	batch := benchBatch(400, 3)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			e.EvaluateBatch(context.Background(), batch, BatchOptions{Pool: pool, Workers: 2})
		}
	})
	b.StopTimer()
	s := e.Stats.Snapshot()
	b.ReportMetric(float64(s["cube_passes"]), "cube-passes")
	b.ReportMetric(float64(s["cube_dedups"]), "dedups")
	b.ReportMetric(float64(s["lock_waits"]), "lock-waits")
}

// BenchmarkEngineSerialBatches is the single-goroutine baseline for the
// concurrent benchmark above.
func BenchmarkEngineSerialBatches(b *testing.B) {
	d := stressDB(b, 20000)
	pool := map[string][]string{
		"t.a": {"p", "q", "r", "s"},
		"t.b": {"u", "v", "w"},
	}
	e := NewEngine(d)
	batch := benchBatch(400, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvaluateBatch(context.Background(), batch, BatchOptions{Pool: pool, Workers: 1})
	}
}
