package sqlexec

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"aggchecker/internal/db"
)

// stressDB builds a randomized two-string-one-numeric table large enough
// that cube passes take measurable time (widening the singleflight window).
func stressDB(tb testing.TB, rows int) *db.Database {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	colA := db.NewStringColumn("a")
	colB := db.NewStringColumn("b")
	colX := db.NewFloatColumn("x")
	avals := []string{"p", "q", "r", "s"}
	bvals := []string{"u", "v", "w"}
	for i := 0; i < rows; i++ {
		if rng.Intn(10) == 0 {
			colA.AppendString("")
		} else {
			colA.AppendString(avals[rng.Intn(len(avals))])
		}
		colB.AppendString(bvals[rng.Intn(len(bvals))])
		if rng.Intn(15) == 0 {
			colX.AppendFloat(math.NaN())
		} else {
			colX.AppendFloat(float64(rng.Intn(100)))
		}
	}
	d := db.NewDatabase("stress")
	d.MustAddTable(db.MustNewTable("t", colA, colB, colX))
	return d
}

func stressDims() []DimSpec {
	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	return []DimSpec{
		{Col: cr("a"), Literals: []string{"p", "q", "r", "s"}},
		{Col: cr("b"), Literals: []string{"u", "v", "w"}},
	}
}

// TestCubeForSingleflight is the acceptance check for concurrent request
// deduplication: many goroutines released simultaneously against the same
// cube signature must trigger exactly one cube pass, share one result, and
// record the coalesced requests in Stats.CubeDedups.
func TestCubeForSingleflight(t *testing.T) {
	e := NewEngine(stressDB(t, 5000))
	dims := stressDims()
	reqs := []AggRequest{
		{Fn: Count, Col: ColumnRef{}},
		{Fn: Sum, Col: ColumnRef{Table: "t", Column: "x"}},
	}
	const goroutines = 32
	// Hold the one cube pass open until every other goroutine has arrived
	// and registered as a coalesced waiter, so the assertion below is
	// deterministic rather than a scheduling race.
	e.testHookBeforeCubePass = func() {
		deadline := time.Now().Add(10 * time.Second)
		for e.Stats.CubeDedups.Load() < goroutines-1 && time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
	results := make([]*CubeResult, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			results[g], errs[g] = e.CubeFor([]string{"t"}, dims, reqs)
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if results[g] != results[0] {
			t.Fatalf("goroutine %d received a different cube result", g)
		}
	}
	if passes := e.Stats.CubePasses.Load(); passes != 1 {
		t.Errorf("cube passes = %d, want 1 (duplicate concurrent requests must coalesce)", passes)
	}
	if misses := e.Stats.CacheMisses.Load(); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
	if dedups := e.Stats.CubeDedups.Load(); dedups != goroutines-1 {
		t.Errorf("cube dedups = %d, want %d (every waiter coalesced onto the one pass)", dedups, goroutines-1)
	}
	if hits := e.Stats.CacheHits.Load(); hits != goroutines-1 {
		t.Errorf("cache hits = %d, want %d (every waiter reuses the one result)", hits, goroutines-1)
	}
}

// TestConcurrentOverlappingBatchesMatchSerial hammers one shared engine
// with overlapping batches from many goroutines and requires results
// identical to serial evaluation on an untouched engine. Run under -race
// this also proves the sharded caches and copy-on-write extension are safe.
func TestConcurrentOverlappingBatchesMatchSerial(t *testing.T) {
	d := stressDB(t, 2000)
	shared := NewEngine(d)
	serial := NewEngine(d)
	serial.Tune(WithCaching(false))

	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	avals := []string{"p", "q", "r", "s"}
	bvals := []string{"u", "v", "w"}
	fns := []AggFunc{Count, Sum, Avg, Min, Max, CountDistinct, Percentage}
	rng := rand.New(rand.NewSource(11))
	const nqueries = 120
	queries := make([]Query, nqueries)
	want := make([]float64, nqueries)
	for i := range queries {
		var preds []Predicate
		if rng.Intn(2) == 0 {
			preds = append(preds, Predicate{Col: cr("a"), Value: avals[rng.Intn(len(avals))]})
		}
		if rng.Intn(2) == 0 {
			preds = append(preds, Predicate{Col: cr("b"), Value: bvals[rng.Intn(len(bvals))]})
		}
		fn := fns[rng.Intn(len(fns))]
		q := Query{Agg: fn, Preds: preds}
		if fn.NeedsNumericColumn() || fn == CountDistinct {
			q.AggCol = cr("x")
		}
		queries[i] = q
		v, err := serial.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	// Each goroutine evaluates a random overlapping slice of the workload,
	// so cube requests collide across goroutines mid-computation.
	const goroutines = 16
	type outcome struct {
		idx []int
		got []float64
	}
	outs := make([]outcome, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		gRng := rand.New(rand.NewSource(int64(100 + g)))
		n := 40 + gRng.Intn(40)
		idx := make([]int, n)
		batch := make([]Query, n)
		for k := 0; k < n; k++ {
			idx[k] = gRng.Intn(nqueries)
			batch[k] = queries[idx[k]]
		}
		outs[g].idx = idx
		wg.Add(1)
		go func(g int, batch []Query) {
			defer wg.Done()
			<-start
			outs[g].got = shared.EvaluateBatch(context.Background(), batch, BatchOptions{Workers: 4})
		}(g, batch)
	}
	close(start)
	wg.Wait()

	for g := range outs {
		for k, i := range outs[g].idx {
			if !eqNaN(outs[g].got[k], want[i]) {
				t.Fatalf("goroutine %d query %s: got %v want %v",
					g, queries[i].Key(), outs[g].got[k], want[i])
			}
		}
	}
	if passes := shared.Stats.CubePasses.Load(); passes > goroutines {
		t.Errorf("cube passes = %d; overlapping batches should coalesce well below one pass per goroutine", passes)
	}
}

// TestConcurrentExtensionSafe extends a cached cube with new aggregation
// columns while other goroutines keep answering from it; copy-on-write
// extension must never invalidate a reader's snapshot.
func TestConcurrentExtensionSafe(t *testing.T) {
	d := stressDB(t, 1000)
	e := NewEngine(d)
	dims := stressDims()
	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	base := []AggRequest{{Fn: Count, Col: ColumnRef{}}}
	if _, err := e.CubeFor([]string{"t"}, dims, base); err != nil {
		t.Fatal(err)
	}
	serial := NewEngine(d)
	countQ := Query{Agg: Count, Preds: []Predicate{{Col: cr("a"), Value: "p"}}}
	sumQ := Query{Agg: Sum, AggCol: cr("x"), Preds: []Predicate{{Col: cr("b"), Value: "u"}}}
	wantCount, _ := serial.Evaluate(countQ)
	wantSum, _ := serial.Evaluate(sumQ)

	start := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(extend bool) {
			defer wg.Done()
			<-start
			for it := 0; it < 20; it++ {
				reqs := base
				if extend {
					reqs = []AggRequest{{Fn: Sum, Col: cr("x")}, {Fn: CountDistinct, Col: cr("x")}}
				}
				cube, err := e.CubeFor([]string{"t"}, dims, reqs)
				if err != nil {
					errCh <- err
					return
				}
				if v, ok := cube.Value(countQ); !ok || !eqNaN(v, wantCount) {
					t.Errorf("count from cube = %v (ok=%v), want %v", v, ok, wantCount)
					return
				}
				if extend {
					if v, ok := cube.Value(sumQ); !ok || !eqNaN(v, wantSum) {
						t.Errorf("sum from cube = %v (ok=%v), want %v", v, ok, wantSum)
						return
					}
				}
			}
		}(g%2 == 0)
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentViewSingleflight verifies concurrent first touches of the
// same join view build it once.
func TestConcurrentViewSingleflight(t *testing.T) {
	e := NewEngine(stressDB(t, 3000))
	const goroutines = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	views := make([]*db.JoinView, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			v, err := e.view([]string{"t"})
			if err != nil {
				t.Error(err)
				return
			}
			views[g] = v
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if views[g] != views[0] {
			t.Fatalf("goroutine %d built a duplicate join view", g)
		}
	}
}
