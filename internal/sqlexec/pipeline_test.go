package sqlexec

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"aggchecker/internal/db"
)

// Differential tests for the vectorized direct-scan pipeline: results must
// be bit-for-bit identical to the retired row-at-a-time closure-matcher
// implementation, which survives here as the test oracle. Unlike the cube
// kernel's parallel partials, direct scans accumulate strictly in row
// order, so even float sums must match to the last bit — with zone-map
// pruning on or off, across NULL-heavy data, single-block and multi-block
// (append-schedule) layouts, and fully pruned scans.

// scalarOracleEvaluate is the retired EvaluateContext loop: per-row
// closure matchers, one row at a time. Kept verbatim as the reference
// semantics for the pipeline, including the ratio-aggregate base contract
// (Percentage: every row; ConditionalProbability: rows matching Preds[0]).
func scalarOracleEvaluate(tb testing.TB, view *db.JoinView, q Query) float64 {
	tb.Helper()
	matchers := make([]func(int) bool, 0, len(q.Preds))
	for _, p := range q.Preds {
		acc, err := view.Accessor(p.Col.Table, p.Col.Column)
		if err != nil {
			tb.Fatal(err)
		}
		if acc.Column().Kind == db.KindString {
			code := acc.Column().CodeOf(p.Value)
			a := acc
			matchers = append(matchers, func(row int) bool { return a.Code(row) == code && code >= 0 })
		} else {
			want, err := parseLiteralFloat(p.Value)
			if err != nil {
				matchers = append(matchers, func(int) bool { return false })
				continue
			}
			a := acc
			matchers = append(matchers, func(row int) bool { return a.Float(row) == want })
		}
	}
	star := q.AggCol.IsStar()
	var aggAcc db.ColumnAccessor
	aggIsStr := false
	if !star {
		var err error
		aggAcc, err = view.Accessor(q.AggCol.Table, q.AggCol.Column)
		if err != nil {
			tb.Fatal(err)
		}
		aggIsStr = aggAcc.Column().Kind == db.KindString
	}
	main := newAccumulator(q.Agg == CountDistinct)
	var base *accumulator
	needBase := q.Agg == Percentage || q.Agg == ConditionalProbability
	if needBase {
		base = newAccumulator(false)
	}
	n := view.NumRows()
	for row := 0; row < n; row++ {
		all := true
		for i := range matchers {
			if !matchers[i](row) {
				all = false
				break
			}
		}
		inBase := false
		if needBase {
			switch q.Agg {
			case Percentage:
				inBase = true
			case ConditionalProbability:
				inBase = len(matchers) == 0 || matchers[0](row)
			}
		}
		if !all && !inBase {
			continue
		}
		var null bool
		var v float64
		var key uint64
		if star {
			null, v = false, math.NaN()
		} else if aggIsStr {
			c := aggAcc.Code(row)
			null, v, key = c < 0, math.NaN(), uint64(uint32(c))
		} else {
			v = aggAcc.Float(row)
			null, key = math.IsNaN(v), math.Float64bits(v)
		}
		if all {
			main.addRow(null, v, key)
		}
		if inBase {
			base.addRow(null, v, key)
		}
	}
	return main.finalize(q.Agg, star, base)
}

// bandedDB builds a single-table database committed in batches, so zones
// never span a batch, with literals that cluster per batch: band is the
// batch label, num counts up monotonically across batches, cat is uniform
// noise with NULLs, val a NULL-heavy measure, and dead an all-NULL column.
func bandedDB(tb testing.TB, rng *rand.Rand, batches, rowsPerBatch int, nullFrac float64) *db.Database {
	tb.Helper()
	band := db.NewStringColumn("band")
	num := db.NewFloatColumn("num")
	cat := db.NewStringColumn("cat")
	val := db.NewFloatColumn("val")
	dead := db.NewFloatColumn("dead")
	d := db.NewDatabase("banded")
	d.MustAddTable(db.MustNewTable("t", band, num, cat, val, dead))
	cats := []string{"p", "q", "r"}
	row := 0
	for b := 0; b < batches; b++ {
		rows := make([][]any, rowsPerBatch)
		for i := range rows {
			var c any = cats[rng.Intn(len(cats))]
			if rng.Float64() < nullFrac {
				c = nil
			}
			var v any = float64(rng.Intn(50))
			if rng.Float64() < nullFrac {
				v = nil
			}
			rows[i] = []any{"b" + strconv.Itoa(b), float64(row), c, v, nil}
			row++
		}
		if err := d.Append("t", rows...); err != nil {
			tb.Fatal(err)
		}
		if _, err := d.Commit(); err != nil {
			tb.Fatal(err)
		}
	}
	return d
}

// randomDirectQuery draws a query against bandedDB's table: 0–3 predicates
// mixing clustered literals (present in one batch only), uniform literals,
// and absent literals, over every aggregate function.
func randomDirectQuery(rng *rand.Rand, batches, totalRows int) Query {
	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	var preds []Predicate
	if rng.Intn(3) > 0 {
		lit := "b" + strconv.Itoa(rng.Intn(batches+1)) // +1: sometimes absent
		preds = append(preds, Predicate{Col: cr("band"), Value: lit})
	}
	if rng.Intn(3) == 0 {
		lit := strconv.Itoa(rng.Intn(totalRows + 10))
		preds = append(preds, Predicate{Col: cr("num"), Value: lit})
	}
	if rng.Intn(3) == 0 {
		lit := []string{"p", "q", "r", "zz", "notanumber"}[rng.Intn(5)]
		preds = append(preds, Predicate{Col: cr("cat"), Value: lit})
	}
	fns := []AggFunc{Count, CountDistinct, Sum, Avg, Min, Max, Percentage, ConditionalProbability}
	q := Query{Agg: fns[rng.Intn(len(fns))], Preds: preds}
	switch rng.Intn(4) {
	case 0: // star
	case 1:
		q.AggCol = cr("val")
	case 2:
		q.AggCol = cr("cat")
	case 3:
		q.AggCol = cr("dead")
	}
	return q
}

func requireSameFloat(t *testing.T, label string, want, got float64) {
	t.Helper()
	if math.Float64bits(want) != math.Float64bits(got) && !(math.IsNaN(want) && math.IsNaN(got)) {
		t.Fatalf("%s: oracle=%v (bits %x) pipeline=%v (bits %x)",
			label, want, math.Float64bits(want), got, math.Float64bits(got))
	}
}

// TestDirectScanDifferentialRandomized is the pipeline property test:
// across randomized append schedules (single-block and multi-block),
// NULL-heavy data, and literal draws that hit every pruning shape (never,
// all-pruned, partially pruned, unprunable), the vectorized direct scan —
// with zone maps on AND off — equals the scalar oracle bit for bit.
func TestDirectScanDifferentialRandomized(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		batches := 1 + rng.Intn(4)
		rowsPerBatch := 30 + rng.Intn(300)
		nullFrac := []float64{0.05, 0.3, 0.9}[rng.Intn(3)]
		d := bandedDB(t, rng, batches, rowsPerBatch, nullFrac)
		pruner := NewEngine(d)
		flat := NewEngine(d)
		flat.Tune(WithZoneMaps(false))
		view, err := db.BuildJoinView(d, []string{"t"})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 30; qi++ {
			q := randomDirectQuery(rng, batches, batches*rowsPerBatch)
			label := fmt.Sprintf("trial %d query %d (%s, batches=%d nulls=%.0f%%)",
				trial, qi, q.Key(), batches, 100*nullFrac)
			want := scalarOracleEvaluate(t, view, q)
			got, err := pruner.Evaluate(q)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireSameFloat(t, label+" [zones on]", want, got)
			got, err = flat.Evaluate(q)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireSameFloat(t, label+" [zones off]", want, got)
		}
	}
}

// TestDirectScanDifferentialJoined covers the gather path (materialized
// join views have no zones; the pipeline must behave identically). The
// oracle runs over the very view instance the engine resolves for each
// query, so both sides see the same join scope and row order.
func TestDirectScanDifferentialJoined(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(8100 + trial)))
		sc := randomDiffSchema(rng, 100+rng.Intn(700), true, false)
		e := NewEngine(sc.d)
		for qi := 0; qi < 20; qi++ {
			var preds []Predicate
			for _, ref := range sc.dimCols {
				if rng.Intn(3) == 0 {
					pool := sc.litPool[ref.String()]
					preds = append(preds, Predicate{Col: ref, Value: pool[rng.Intn(len(pool))]})
				}
			}
			fns := []AggFunc{Count, Sum, Avg, Min, Max, CountDistinct, Percentage, ConditionalProbability}
			q := Query{Agg: fns[rng.Intn(len(fns))], Preds: preds}
			if rng.Intn(2) == 0 {
				q.AggCol = sc.aggCols[rng.Intn(len(sc.aggCols))]
			}
			label := fmt.Sprintf("joined trial %d query %d (%s)", trial, qi, q.Key())
			view, err := e.viewAt(sc.d.Snapshot(), q.Tables(e.DefaultTable()))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			want := scalarOracleEvaluate(t, view, q)
			got, err := e.Evaluate(q)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireSameFloat(t, label, want, got)
		}
	}
}

// TestRatioBaseContract is the regression test for the base-predicate
// contract the old implementation left implicit: Percentage's denominator
// covers every row regardless of predicates, ConditionalProbability's
// exactly the rows matching the conditioning predicate Preds[0] — and
// zone pruning of the numerator must never shrink either denominator.
func TestRatioBaseContract(t *testing.T) {
	// Two committed blocks: a=x only in block 1, b=y only in block 2, so
	// the conjunction (a=x AND b=y) is zone-refuted in every block while
	// both denominators stay non-empty.
	a := db.NewStringColumn("a")
	b := db.NewStringColumn("b")
	d := db.NewDatabase("ratio")
	d.MustAddTable(db.MustNewTable("t", a, b))
	block1 := [][]any{{"x", "other"}, {"x", "other"}, {"w", "other"}, {"w", "other"}}
	block2 := [][]any{{"w", "y"}, {"w", "y"}, {"w", "y"}, {"w", "other"}}
	if err := d.Append("t", block1...); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append("t", block2...); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(d)
	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	conj := []Predicate{{Col: cr("a"), Value: "x"}, {Col: cr("b"), Value: "y"}}

	// ConditionalProbability: P(b=y | a=x) = 0/2 = 0, not NaN — the two
	// a=x rows live in a block the numerator's conjunction prunes.
	cp := Query{Agg: ConditionalProbability, Preds: conj}
	v, err := e.Evaluate(cp)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("CP(b=y|a=x) = %v, want 0 (denominator = 2 a=x rows)", v)
	}
	if pruned := e.Stats.BlocksPruned.Load(); pruned == 0 {
		t.Error("conjunction should be zone-pruned in every block")
	}

	// The denominator is Preds[0] alone — never the conjunction, never
	// Preds[1]: swapping the condition flips the answer.
	swapped := Query{Agg: ConditionalProbability, Preds: []Predicate{conj[1], conj[0]}}
	v, err = e.Evaluate(swapped)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("CP(a=x|b=y) = %v, want 0 (denominator = 3 b=y rows)", v)
	}
	// A conditioning predicate with matches yields the exact ratio.
	one := Query{Agg: ConditionalProbability, Preds: []Predicate{
		{Col: cr("a"), Value: "w"}, {Col: cr("b"), Value: "y"},
	}}
	v, err = e.Evaluate(one)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100.0 * 3 / 6; !eqNaN(v, want) {
		t.Errorf("CP(b=y|a=w) = %v, want %v", v, want)
	}

	// Percentage: denominator is every row of the view even when the
	// numerator is pruned everywhere ("absent" exists in no block).
	pct := Query{Agg: Percentage, Preds: []Predicate{{Col: cr("a"), Value: "absent"}}}
	v, err = e.Evaluate(pct)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("Percentage(a=absent) = %v, want 0 (8-row denominator)", v)
	}
	pctX := Query{Agg: Percentage, Preds: conj}
	v, err = e.Evaluate(pctX)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("Percentage(a=x AND b=y) = %v, want 0", v)
	}
	pctW := Query{Agg: Percentage, Preds: []Predicate{{Col: cr("a"), Value: "x"}}}
	v, err = e.Evaluate(pctW)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100.0 * 2 / 8; !eqNaN(v, want) {
		t.Errorf("Percentage(a=x) = %v, want %v", v, want)
	}

	// The contract matches the cube's base cells bit for bit.
	dims := []DimSpec{
		{Col: cr("a"), Literals: []string{"x", "w"}},
		{Col: cr("b"), Literals: []string{"y"}},
	}
	cube, err := e.CubeFor([]string{"t"}, dims, []AggRequest{{Fn: Count, Col: ColumnRef{}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{cp, one, pctX, pctW,
		{Agg: Percentage, Preds: nil}, {Agg: ConditionalProbability, Preds: nil}} {
		cv, ok := cube.Value(q)
		if !ok {
			t.Fatalf("cube cannot answer %s", q.Key())
		}
		dv, err := e.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if !eqNaN(cv, dv) {
			t.Errorf("%s: cube=%v direct=%v", q.Key(), cv, dv)
		}
	}
}

// TestDirectScanPruningStats pins the new counters: a clustered literal
// prunes every block but its own, the scan is counted as one vectorized
// direct scan, selection-vector buffers are reused across surviving
// segments, and rows_scanned reflects only the processed rows.
func TestDirectScanPruningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	batches, rowsPer := 6, 200
	d := bandedDB(t, rng, batches, rowsPer, 0.1)
	e := NewEngine(d)
	q := Query{Agg: Count, Preds: []Predicate{{Col: ColumnRef{Table: "t", Column: "band"}, Value: "b3"}}}
	v, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if v != float64(rowsPer) {
		t.Fatalf("Count(band=b3) = %v, want %d", v, rowsPer)
	}
	s := e.Stats.Snapshot()
	if s["direct_vector_scans"] != 1 {
		t.Errorf("direct_vector_scans = %d, want 1", s["direct_vector_scans"])
	}
	if s["blocks_pruned"] != int64(batches-1) {
		t.Errorf("blocks_pruned = %d, want %d", s["blocks_pruned"], batches-1)
	}
	if s["blocks_scanned"] != 1 {
		t.Errorf("blocks_scanned = %d, want 1", s["blocks_scanned"])
	}
	if s["rows_scanned"] != int64(rowsPer) {
		t.Errorf("rows_scanned = %d, want %d (pruned blocks are not scanned)", s["rows_scanned"], rowsPer)
	}

	// Numeric range pruning: num is monotone, so an equality literal
	// survives only its own block.
	e2 := NewEngine(d)
	q2 := Query{Agg: Count, Preds: []Predicate{{Col: ColumnRef{Table: "t", Column: "num"}, Value: "250"}}}
	v, err = e2.Evaluate(q2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("Count(num=250) = %v, want 1", v)
	}
	if s2 := e2.Stats.Snapshot(); s2["blocks_pruned"] != int64(batches-1) {
		t.Errorf("numeric blocks_pruned = %d, want %d", s2["blocks_pruned"], batches-1)
	}

	// A multi-segment unpruned scan reuses the selection vector.
	e3 := NewEngine(d)
	q3 := Query{Agg: Count, Preds: []Predicate{{Col: ColumnRef{Table: "t", Column: "cat"}, Value: "p"}}}
	if _, err := e3.Evaluate(q3); err != nil {
		t.Fatal(err)
	}
	if s3 := e3.Stats.Snapshot(); s3["selvec_reuses"] != int64(batches-1) {
		t.Errorf("selvec_reuses = %d, want %d", s3["selvec_reuses"], batches-1)
	}
}

// TestDirectScanCancellation: the pipeline aborts between segments.
func TestDirectScanCancellation(t *testing.T) {
	d := stressDB(t, 20000)
	e := NewEngine(d)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.EvaluateContext(ctx, Query{Agg: Count})
	if err != context.Canceled {
		t.Errorf("cancelled direct scan returned %v, want context.Canceled", err)
	}
}

// TestCubeZoneMapPruning drives a cube pass whose dimension literals are
// confined to one block: every other block must take the batched
// rolled-up update, and the result must equal both the unpruned
// vectorized pass and the scalar interpreter bit for bit.
func TestCubeZoneMapPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	batches, rowsPer := 5, 300
	d := bandedDB(t, rng, batches, rowsPer, 0.2)
	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	dims := []DimSpec{
		{Col: cr("band"), Literals: []string{"b2"}},
		{Col: cr("num"), Literals: []string{"650", "700"}}, // block 2 only
	}
	reqs := []AggRequest{
		{Fn: Count, Col: ColumnRef{}},
		{Fn: Sum, Col: cr("val")},
		{Fn: CountDistinct, Col: cr("cat")},
		{Fn: CountDistinct, Col: cr("val")},
	}

	pruner := NewEngine(d)
	pruned, err := pruner.CubeFor([]string{"t"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	s := pruner.Stats.Snapshot()
	if s["blocks_pruned"] != int64(batches-1) {
		t.Errorf("cube blocks_pruned = %d, want %d", s["blocks_pruned"], batches-1)
	}
	if s["blocks_scanned"] != 1 {
		t.Errorf("cube blocks_scanned = %d, want 1", s["blocks_scanned"])
	}

	flat := NewEngine(d)
	flat.Tune(WithZoneMaps(false))
	unpruned, err := flat.CubeFor([]string{"t"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if fs := flat.Stats.Snapshot(); fs["blocks_pruned"] != 0 {
		t.Errorf("zone maps disabled but blocks_pruned = %d", fs["blocks_pruned"])
	}
	requireCubesIdentical(t, unpruned, pruned, "pruned vs unpruned cube")

	scalar := NewEngine(d)
	scalar.Tune(WithScalarKernel(true))
	want, err := scalar.CubeFor([]string{"t"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	requireCubesIdentical(t, want, pruned, "pruned cube vs scalar oracle")
}

// TestCubeZoneMapPruningRandomized: randomized banded schedules, random
// dimension/literal draws (some clustered, some absent, some uniform),
// pruned vectorized vs scalar interpreter, bit for bit. Data is float-
// valued: single-threaded passes preserve row order even on the batched
// rolled-up path (register-seeded accumulation).
func TestCubeZoneMapPruningRandomized(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 8
	}
	ctx := context.Background()
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9300 + trial)))
		batches := 1 + rng.Intn(5)
		rowsPer := 50 + rng.Intn(250)
		nullFrac := []float64{0.05, 0.4, 1}[rng.Intn(3)]
		d := bandedDB(t, rng, batches, rowsPer, nullFrac)
		view, err := db.BuildJoinView(d, []string{"t"})
		if err != nil {
			t.Fatal(err)
		}
		cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
		var dims []DimSpec
		dimPool := []DimSpec{
			{Col: cr("band"), Literals: []string{"b0", "b" + strconv.Itoa(rng.Intn(batches+2))}},
			{Col: cr("num"), Literals: []string{strconv.Itoa(rng.Intn(batches * rowsPer)), "-5"}},
			{Col: cr("cat"), Literals: []string{"p", "zz"}},
		}
		for _, ds := range dimPool {
			if rng.Intn(2) == 0 {
				dims = append(dims, ds)
			}
		}
		var cols []trackedCol
		for _, c := range []string{"val", "cat", "dead"} {
			switch rng.Intn(3) {
			case 1:
				cols = append(cols, trackedCol{ref: cr(c)})
			case 2:
				cols = append(cols, trackedCol{ref: cr(c), needDistinct: true})
			}
		}
		label := fmt.Sprintf("trial %d (batches=%d rowsPer=%d dims=%d)", trial, batches, rowsPer, len(dims))
		want, err := computeCubeScalar(ctx, view, []string{"t"}, dims, cols)
		if err != nil {
			t.Fatalf("%s: scalar: %v", label, err)
		}
		got, err := computeCubeVectorized(ctx, view, []string{"t"}, dims, cols, passConfig{workers: 1, zones: true})
		if err != nil {
			t.Fatalf("%s: vectorized+zones: %v", label, err)
		}
		requireCubesIdentical(t, want, got, label)
	}
}
