package sqlexec

import (
	"context"
	"testing"
)

// TestCacheEconomicsCounters: a repeated batch hits the cube cache and the
// hit records the build time and bytes it avoided re-spending.
func TestCacheEconomicsCounters(t *testing.T) {
	e := NewEngine(nflDB(t))
	batch := []Query{
		{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}},
		{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "4"}}},
	}
	first := e.EvaluateBatch(context.Background(), batch, BatchOptions{})
	second := e.EvaluateBatch(context.Background(), batch, BatchOptions{})
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("q%d changed across runs: %v then %v", i, first[i], second[i])
		}
	}
	if e.Stats.CacheHits.Load() == 0 {
		t.Fatal("repeat batch recorded no cache hits")
	}
	if e.Stats.CubeCacheNsSaved.Load() <= 0 {
		t.Error("cache hit saved no build time")
	}
	if e.Stats.CubeCacheBytesSaved.Load() <= 0 {
		t.Error("cache hit saved no bytes")
	}
	entries, bytes := e.CacheUsage()
	if entries <= 0 || bytes <= 0 {
		t.Errorf("CacheUsage = %d entries, %d bytes after caching a cube", entries, bytes)
	}
}

// distinctCubeBatches returns single-query batches over different
// dimension sets, so each one builds its own cube entry.
func distinctCubeBatches() [][]Query {
	var out [][]Query
	for _, col := range []string{"games", "category", "team", "name"} {
		out = append(out, []Query{{Agg: Count, Preds: []Predicate{{Col: ref(col), Value: "x"}}}})
	}
	out = append(out, []Query{{Agg: Count, Preds: []Predicate{
		{Col: ref("team"), Value: "CIN"}, {Col: ref("category"), Value: "gambling"},
	}}})
	return out
}

// TestCubeCacheBudgetEviction: once resident bytes exceed the budget, the
// cost-aware sweep evicts entries down to the budget; evicted cubes
// recompute correctly on demand.
func TestCubeCacheBudgetEviction(t *testing.T) {
	const budget = 700
	e := NewEngine(nflDB(t), WithCubeCacheBudget(budget))
	for _, batch := range distinctCubeBatches() {
		e.EvaluateBatch(context.Background(), batch, BatchOptions{})
	}
	if e.Stats.CubeCacheEvictions.Load() == 0 {
		_, bytes := e.CacheUsage()
		t.Fatalf("no evictions with %d resident bytes against a %d budget", bytes, budget)
	}
	if _, bytes := e.CacheUsage(); bytes > budget {
		t.Errorf("resident bytes %d exceed budget %d after sweep", bytes, budget)
	}
	// Evicted cubes rebuild with the same answers.
	q := Query{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}}
	if got := e.EvaluateBatch(context.Background(), []Query{q}, BatchOptions{}); got[0] != 4 {
		t.Errorf("post-eviction count = %v, want 4", got[0])
	}
}

// TestCubeCacheAdmitReject: a result bigger than the whole budget is
// served but never cached.
func TestCubeCacheAdmitReject(t *testing.T) {
	e := NewEngine(nflDB(t), WithCubeCacheBudget(1))
	q := []Query{{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}}}
	if got := e.EvaluateBatch(context.Background(), q, BatchOptions{}); got[0] != 4 {
		t.Fatalf("count = %v, want 4", got[0])
	}
	if e.Stats.CubeCacheAdmitRejects.Load() == 0 {
		t.Error("oversized result was not counted as an admission reject")
	}
	if entries, _ := e.CacheUsage(); entries != 0 {
		t.Errorf("%d entries resident under a 1-byte budget", entries)
	}
	// Still correct on re-evaluation (recomputed, not cached).
	if got := e.EvaluateBatch(context.Background(), q, BatchOptions{}); got[0] != 4 {
		t.Errorf("repeat count = %v, want 4", got[0])
	}
}

// TestCubeCacheBudgetRetune: WithCubeCacheBudget via Tune shrinks the
// budget on a live engine and sweeps immediately.
func TestCubeCacheBudgetRetune(t *testing.T) {
	e := NewEngine(nflDB(t))
	for _, batch := range distinctCubeBatches() {
		e.EvaluateBatch(context.Background(), batch, BatchOptions{})
	}
	entries, bytes := e.CacheUsage()
	if entries == 0 || bytes == 0 {
		t.Fatalf("nothing cached: %d entries, %d bytes", entries, bytes)
	}
	e.Tune(WithCubeCacheBudget(bytes / 2))
	if _, after := e.CacheUsage(); after > bytes/2 {
		t.Errorf("resident bytes %d exceed retuned budget %d", after, bytes/2)
	}
	if e.Stats.CubeCacheEvictions.Load() == 0 {
		t.Error("retune below residency evicted nothing")
	}
}
