package sqlexec

import (
	"context"
	"errors"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMorselRangesDeterministicAndCovering checks the decomposition
// invariants everything else leans on: morselRanges is a pure function of
// its inputs, covers [lo, hi) exactly with no gaps or overlaps, aligns on
// segment boundaries, and bounds the number of live partials per job.
func TestMorselRangesDeterministicAndCovering(t *testing.T) {
	cases := []struct{ lo, hi, workers int }{
		{0, 1, 1},
		{0, kernelBlockRows, 4},
		{0, 10*morselTargetRows + 37, 1},
		{0, 10*morselTargetRows + 37, 4},
		{123, 64*morselTargetRows + 7, 4},
		{kernelBlockRows / 2, 3 * morselTargetRows, 16},
	}
	for _, c := range cases {
		a := morselRanges(nil, c.lo, c.hi, c.workers)
		b := morselRanges(nil, c.lo, c.hi, c.workers)
		if len(a) != len(b) {
			t.Fatalf("[%d,%d)x%d: nondeterministic length %d vs %d", c.lo, c.hi, c.workers, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("[%d,%d)x%d: nondeterministic morsel %d: %v vs %v", c.lo, c.hi, c.workers, i, a[i], b[i])
			}
		}
		want := c.lo
		for i, r := range a {
			if r.lo != want {
				t.Fatalf("[%d,%d)x%d: morsel %d starts at %d, want %d (gap or overlap)", c.lo, c.hi, c.workers, i, r.lo, want)
			}
			if r.hi <= r.lo {
				t.Fatalf("[%d,%d)x%d: empty morsel %d: %v", c.lo, c.hi, c.workers, i, r)
			}
			want = r.hi
		}
		if want != c.hi {
			t.Fatalf("[%d,%d)x%d: coverage ends at %d", c.lo, c.hi, c.workers, want)
		}
		maxMorsels := 2 * c.workers
		if maxMorsels < minMorselsPerJob {
			maxMorsels = minMorselsPerJob
		}
		if len(a) > maxMorsels+1 {
			t.Fatalf("[%d,%d)x%d: %d morsels, want <= %d (partial-memory bound)", c.lo, c.hi, c.workers, len(a), maxMorsels+1)
		}
	}
}

// TestSchedulerRunExecutesAllMorsels checks that every width — including 1,
// which has no helpers and runs entirely on the submitter — executes each
// morsel exactly once, across many concurrent jobs.
func TestSchedulerRunExecutesAllMorsels(t *testing.T) {
	for _, width := range []int{1, 2, 4} {
		s := NewScheduler(width)
		const jobs, morsels = 8, 37
		var wg sync.WaitGroup
		counts := make([][]atomic.Int32, jobs)
		for j := range counts {
			counts[j] = make([]atomic.Int32, morsels)
		}
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				var stats Stats
				err := s.Run(context.Background(), &stats, morsels, 0, func(i int) error {
					counts[j][i].Add(1)
					return nil
				})
				if err != nil {
					t.Errorf("width %d job %d: %v", width, j, err)
				}
				if got := stats.MorselsDispatched.Load(); got != morsels {
					t.Errorf("width %d job %d: morsels_dispatched = %d, want %d", width, j, got, morsels)
				}
			}(j)
		}
		wg.Wait()
		for j := range counts {
			for i := range counts[j] {
				if got := counts[j][i].Load(); got != 1 {
					t.Fatalf("width %d: job %d morsel %d executed %d times", width, j, i, got)
				}
			}
		}
		s.Close()
	}
}

// TestSchedulerRunPropagatesError checks that the first morsel error aborts
// the job (later morsels are skipped) and is what Run returns.
func TestSchedulerRunPropagatesError(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	boom := errors.New("boom")
	var ran atomic.Int32
	err := s.Run(context.Background(), nil, 64, 0, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n >= 64 {
		t.Fatalf("all %d morsels ran despite the early error", n)
	}
}

// TestSchedulerHelperSteals proves helper participation deterministically:
// the owner blocks inside morsel 0 until some other goroutine has executed
// morsel 1, which only a pool helper can do.
func TestSchedulerHelperSteals(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	var stats Stats
	release := make(chan struct{})
	err := s.Run(context.Background(), &stats, 2, 0, func(i int) error {
		if i == 0 {
			<-release
		} else {
			close(release)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.StealCount.Load(); got != 1 {
		t.Errorf("steal_count = %d, want 1 (helper must have taken morsel 1)", got)
	}
	if got := stats.MorselsDispatched.Load(); got != 2 {
		t.Errorf("morsels_dispatched = %d, want 2", got)
	}
}

// TestSchedulerCancelMidMorselNoLeak cancels a job while morsels are
// executing and then closes the pool: Run must return the context error
// promptly, and no scheduler goroutine may outlive Close.
func TestSchedulerCancelMidMorselNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	s := NewScheduler(4)
	ctx, cancel := context.WithCancel(context.Background())
	var stats Stats
	var ran atomic.Int32
	err := s.Run(ctx, &stats, 256, 0, func(i int) error {
		if ran.Add(1) == 2 {
			cancel() // mid-job, with other morsels in flight
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 256 {
		t.Fatalf("all %d morsels ran despite cancellation", n)
	}
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > base {
		t.Errorf("goroutines after Close: %d, baseline %d (helper leak)", now, base)
	}
}

// TestSchedulerRunAfterCloseInline checks the documented Close contract:
// later submissions still complete, entirely on their submitter.
func TestSchedulerRunAfterCloseInline(t *testing.T) {
	s := NewScheduler(4)
	s.Close()
	var stats Stats
	var ran atomic.Int32
	if err := s.Run(context.Background(), &stats, 16, 0, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d morsels, want 16", got)
	}
	if got := stats.StealCount.Load(); got != 0 {
		t.Fatalf("steal_count = %d after Close, want 0 (inline execution)", got)
	}
}

// TestSchedulerFairnessLightUnderHeavy is the starvation check behind the
// shared-pool design: with one heavy job saturating the pool, light jobs
// submitted concurrently must still finish at roughly their own pace,
// because their submitters execute their own morsels (owner participation)
// and helpers round-robin one morsel at a time. The latency bound is
// deliberately loose — sleeps dominate, so it holds on one core and under
// the race detector.
func TestSchedulerFairnessLightUnderHeavy(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()

	heavyDone := make(chan time.Duration, 1)
	heavyStart := time.Now()
	go func() {
		_ = s.Run(context.Background(), nil, 300, 0, func(i int) error {
			time.Sleep(2 * time.Millisecond)
			return nil
		})
		heavyDone <- time.Since(heavyStart)
	}()

	// Give the heavy job time to occupy the helper.
	time.Sleep(20 * time.Millisecond)

	const lights = 20
	lat := make([]time.Duration, lights)
	for k := 0; k < lights; k++ {
		st := time.Now()
		if err := s.Run(context.Background(), nil, 3, 0, func(i int) error {
			time.Sleep(time.Millisecond)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		lat[k] = time.Since(st)
	}
	heavyTotal := <-heavyDone

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p95 := lat[lights*95/100]
	// A light job is ~3ms of work; if it had serialized behind the heavy
	// job's remaining morsels it would measure in the hundreds of ms.
	if bound := heavyTotal / 3; p95 > bound {
		t.Errorf("light p95 = %v with heavy total %v (bound %v): light jobs starved behind the heavy pass", p95, heavyTotal, bound)
	}
}

// TestSchedulerEngineMatchesSingleThreaded is the determinism acceptance
// check: on integer-valued data (stressDB's x column), direct scans and
// cube passes through a width-4 shared scheduler must be bit-for-bit
// identical to a single-threaded engine, because the morsel decomposition
// is fixed and partials merge in morsel-index order.
func TestSchedulerEngineMatchesSingleThreaded(t *testing.T) {
	defer func(old int) { kernelParallelMinRows = old }(kernelParallelMinRows)
	kernelParallelMinRows = 64

	d := stressDB(t, 40000)
	serial := NewEngine(d, WithCaching(false), WithScanWorkers(1))
	sched := NewScheduler(4)
	defer sched.Close()
	par := NewEngine(d, WithScheduler(sched), WithCaching(false), WithScanWorkers(4))

	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	avals := []string{"p", "q", "r", "s", ""}
	bvals := []string{"u", "v", "w"}
	var queries []Query
	for _, fn := range []AggFunc{Count, Sum, Avg, Min, Max, CountDistinct, Percentage} {
		for _, av := range avals {
			for _, bv := range bvals {
				q := Query{Agg: fn, Preds: []Predicate{{Col: cr("a"), Value: av}, {Col: cr("b"), Value: bv}}}
				if fn.NeedsNumericColumn() || fn == CountDistinct {
					q.AggCol = cr("x")
				}
				queries = append(queries, q)
			}
		}
	}

	// Direct-scan path: Evaluate goes through evaluateDirect morsels.
	for _, q := range queries {
		want, err := serial.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(got, want) {
			t.Fatalf("direct %s: scheduler %v (%#x) != single-threaded %v (%#x)",
				q.Key(), got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	if par.Stats.MorselsDispatched.Load() == 0 {
		t.Fatal("no morsels dispatched: the direct scans never used the scheduler")
	}

	// Cube path: EvaluateBatch merges the battery into cube passes.
	gotBatch := par.EvaluateBatch(context.Background(), queries, BatchOptions{Workers: 4})
	for i, q := range queries {
		want, _ := serial.Evaluate(q)
		if !bitIdentical(gotBatch[i], want) {
			t.Fatalf("cube %s: scheduler %v != single-threaded %v", q.Key(), gotBatch[i], want)
		}
	}
}

// TestSchedulerPassPoolsPartials asserts the allocation contract of the
// lattice pool: once the pool is warm, further morsel-driven cube passes of
// the same lattice shape take every dense partial array from the pool —
// zero fresh allocations, counted by the latticePoolMisses test hook. GC is
// disabled for the steady-state window so sync.Pool cannot shed its
// contents mid-assertion.
func TestSchedulerPassPoolsPartials(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops puts at random; zero-miss cannot hold")
	}
	defer func(old int) { kernelParallelMinRows = old }(kernelParallelMinRows)
	kernelParallelMinRows = 64

	d := stressDB(t, 40000)
	sched := NewScheduler(4)
	defer sched.Close()
	e := NewEngine(d, WithScheduler(sched), WithCaching(false), WithScanWorkers(4))
	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	dims := []DimSpec{
		{Col: cr("a"), Literals: []string{"p", "q", "r", "s"}},
		{Col: cr("b"), Literals: []string{"u", "v", "w"}},
	}
	reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}, {Fn: Sum, Col: cr("x")}}
	pass := func() {
		if _, err := e.CubeForContext(context.Background(), []string{"t"}, dims, reqs); err != nil {
			t.Fatal(err)
		}
	}

	// Warm the pool: the first passes populate it with as many partials as
	// the scheduler keeps in flight at peak.
	for i := 0; i < 3; i++ {
		pass()
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC() // settle before the window so no collection lands inside it
	before := latticePoolMisses.Load()
	for i := 0; i < 5; i++ {
		pass()
	}
	if misses := latticePoolMisses.Load() - before; misses != 0 {
		t.Errorf("steady-state passes allocated %d dense partial arrays, want 0 (pool reuse)", misses)
	}
	if e.Stats.MorselsDispatched.Load() == 0 {
		t.Fatal("passes never used the scheduler morsel path")
	}
}

// bitIdentical compares float64s exactly (NaN equals NaN).
func bitIdentical(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestSchedulerSharedStress hammers one process-wide scheduler from a heavy
// cube-pass loop and many light direct scans at once (run under -race this
// is the data-race acceptance test for the shared pool). Light results must
// stay correct throughout.
func TestSchedulerSharedStress(t *testing.T) {
	defer func(old int) { kernelParallelMinRows = old }(kernelParallelMinRows)
	kernelParallelMinRows = 64

	d := stressDB(t, 40000)
	sched := NewScheduler(4)
	defer sched.Close()
	heavyEng := NewEngine(d, WithScheduler(sched), WithCaching(false))
	lightEng := NewEngine(d, WithScheduler(sched), WithCaching(false))
	serial := NewEngine(d, WithScanWorkers(1))

	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	lightQ := Query{Agg: Sum, AggCol: cr("x"), Preds: []Predicate{{Col: cr("b"), Value: "v"}}}
	want, err := serial.Evaluate(lightQ)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // heavy: repeated full cube passes
		defer wg.Done()
		dims := stressDims()
		reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}, {Fn: Sum, Col: cr("x")}}
		for ctx.Err() == nil {
			if _, err := heavyEng.CubeFor([]string{"t"}, dims, reqs); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() { // light: direct scans sharing the same pool
			defer wg.Done()
			for k := 0; k < 25; k++ {
				got, err := lightEng.Evaluate(lightQ)
				if err != nil {
					t.Error(err)
					return
				}
				if !bitIdentical(got, want) {
					t.Errorf("light scan under load: got %v want %v", got, want)
					return
				}
			}
		}()
	}

	// Let the mix run, then stop the heavy loop.
	time.Sleep(200 * time.Millisecond)
	cancel()
	wg.Wait()

	if heavyEng.Stats.MorselsDispatched.Load() == 0 {
		t.Error("heavy engine dispatched no morsels")
	}
	if lightEng.Stats.MorselsDispatched.Load() == 0 {
		t.Error("light engine dispatched no morsels")
	}
}

// TestPerRequestScanWorkerOverride checks the context-carried request
// override: WithScanWorkers(1) on the context must force that request's
// scans off the scheduler (single-threaded), without retuning the engine.
func TestPerRequestScanWorkerOverride(t *testing.T) {
	defer func(old int) { kernelParallelMinRows = old }(kernelParallelMinRows)
	kernelParallelMinRows = 64

	d := stressDB(t, 40000)
	sched := NewScheduler(4)
	defer sched.Close()
	e := NewEngine(d, WithScheduler(sched), WithCaching(false))
	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	q := Query{Agg: Sum, AggCol: cr("x"), Preds: []Predicate{{Col: cr("b"), Value: "u"}}}

	ctx := ContextWithOptions(context.Background(), WithScanWorkers(1))
	if _, err := e.EvaluateContext(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats.MorselsDispatched.Load(); got != 0 {
		t.Fatalf("morsels_dispatched = %d under a scan_workers=1 override, want 0", got)
	}
	if _, err := e.EvaluateContext(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats.MorselsDispatched.Load(); got == 0 {
		t.Fatal("no morsels dispatched without the override: scheduler not in use")
	}
}
