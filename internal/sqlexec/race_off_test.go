//go:build !race

package sqlexec

// raceEnabled mirrors the race build tag; the lattice-pool reuse
// assertion skips under the race detector, whose sync.Pool
// instrumentation deliberately drops puts at random to widen interleaving
// coverage — steady-state zero-miss cannot hold there by design.
const raceEnabled = false
