package sqlexec

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"aggchecker/internal/db"
)

// partialTestDB builds a small fact table; when pick is non-nil only rows
// with pick(i) true are loaded, so shard partitions can be carved from the
// same logical row set. Dictionary code assignment intentionally differs
// between partitions (each sees values in its own first-seen order).
func partialTestDB(t *testing.T, name string, rows int, pick func(int) bool) *db.Database {
	t.Helper()
	cat := db.NewStringColumn("cat")
	val := db.NewFloatColumn("val")
	tag := db.NewStringColumn("tag")
	cats := []string{"red", "green", "blue"}
	for i := 0; i < rows; i++ {
		if pick != nil && !pick(i) {
			continue
		}
		if i%7 == 3 {
			cat.AppendString("") // NULL
		} else {
			cat.AppendString(cats[i%3])
		}
		if i%5 == 2 {
			val.AppendFloat(math.NaN()) // NULL
		} else {
			val.AppendFloat(float64(i % 13))
		}
		tag.AppendString([]string{"x", "y", "z", "w"}[i%4])
	}
	d := db.NewDatabase(name)
	d.MustAddTable(db.MustNewTable("fact", cat, val, tag))
	return d
}

func partialTestQueries() []Query {
	fcat := ColumnRef{Table: "fact", Column: "cat"}
	fval := ColumnRef{Table: "fact", Column: "val"}
	ftag := ColumnRef{Table: "fact", Column: "tag"}
	var qs []Query
	for _, lit := range []string{"red", "green", "blue"} {
		qs = append(qs,
			Query{Agg: Count, Preds: []Predicate{{Col: fcat, Value: lit}}},
			Query{Agg: Sum, AggCol: fval, Preds: []Predicate{{Col: fcat, Value: lit}}},
			Query{Agg: Avg, AggCol: fval, Preds: []Predicate{{Col: fcat, Value: lit}}},
			Query{Agg: Min, AggCol: fval, Preds: []Predicate{{Col: fcat, Value: lit}}},
			Query{Agg: Max, AggCol: fval, Preds: []Predicate{{Col: fcat, Value: lit}}},
			Query{Agg: CountDistinct, AggCol: ftag, Preds: []Predicate{{Col: fcat, Value: lit}}},
			Query{Agg: Percentage, Preds: []Predicate{{Col: fcat, Value: lit}}},
			Query{Agg: ConditionalProbability, Preds: []Predicate{{Col: fcat, Value: lit}}},
		)
	}
	qs = append(qs, Query{Agg: Count}, Query{Agg: CountDistinct, AggCol: ftag})
	return qs
}

// TestMergeCubePartialsMatchesUnsharded merges K per-partition cube
// partials (serialized through JSON, as the HTTP transport would) and
// checks every answer bit-for-bit against one unsharded pass.
func TestMergeCubePartialsMatchesUnsharded(t *testing.T) {
	const rows, k = 2000, 3
	ctx := context.Background()
	req := CubeRequest{
		Tables: []string{"fact"},
		Dims:   []DimSpec{{Col: ColumnRef{Table: "fact", Column: "cat"}, Literals: []string{"red", "green", "blue"}}},
		Reqs: []AggRequest{
			{Fn: Count, Col: ColumnRef{}},
			{Fn: Sum, Col: ColumnRef{Table: "fact", Column: "val"}},
			{Fn: CountDistinct, Col: ColumnRef{Table: "fact", Column: "tag"}},
		},
	}

	var parts []*CubePartial
	for s := 0; s < k; s++ {
		s := s
		eng := NewEngine(partialTestDB(t, "part", rows, func(i int) bool { return i%k == s }))
		p, err := eng.CubePartialFor(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip through JSON: the wire form must be lossless,
		// including the ±Inf min/max of empty accumulators.
		raw, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back CubePartial
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, &back)
	}
	merged, err := MergeCubePartials(parts)
	if err != nil {
		t.Fatal(err)
	}

	full := NewEngine(partialTestDB(t, "full", rows, nil))
	want, err := full.CubeForContext(ctx, req.Tables, req.Dims, req.Reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range partialTestQueries() {
		wv, wok := want.Value(q)
		gv, gok := merged.Value(q)
		if wok != gok {
			t.Fatalf("%s: coverage mismatch (unsharded %v, merged %v)", q.Key(), wok, gok)
		}
		if !wok {
			continue
		}
		if math.Float64bits(wv) != math.Float64bits(gv) {
			t.Errorf("%s: unsharded %v, merged %v", q.Key(), wv, gv)
		}
	}
}

// TestMergeCubePartialsCanonicalDistinct pins the cross-dictionary hazard:
// two partitions that assign different codes to the same strings must not
// double-count distinct values.
func TestMergeCubePartialsCanonicalDistinct(t *testing.T) {
	build := func(name string, vals ...string) *Engine {
		c := db.NewStringColumn("v")
		for _, v := range vals {
			c.AppendString(v)
		}
		d := db.NewDatabase(name)
		d.MustAddTable(db.MustNewTable("t", c))
		return NewEngine(d)
	}
	// Shard 0 sees b first (code 0), shard 1 sees a first (code 0).
	e0 := build("s0", "b", "a")
	e1 := build("s1", "a", "b", "c")
	req := CubeRequest{
		Tables: []string{"t"},
		Reqs:   []AggRequest{{Fn: CountDistinct, Col: ColumnRef{Table: "t", Column: "v"}}},
	}
	p0, err := e0.CubePartialFor(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := e1.CubePartialFor(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeCubePartials([]*CubePartial{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := merged.Value(Query{Agg: CountDistinct, AggCol: ColumnRef{Table: "t", Column: "v"}})
	if !ok || got != 3 {
		t.Fatalf("merged distinct = %v (ok=%v), want 3: code-space keys leaked across dictionaries", got, ok)
	}
}

// TestScanPartialsMatchDirect folds per-partition scan partials and checks
// the finalized value bit-for-bit against the unsharded direct scan.
func TestScanPartialsMatchDirect(t *testing.T) {
	const rows, k = 1500, 4
	ctx := context.Background()
	var engines []*Engine
	for s := 0; s < k; s++ {
		s := s
		engines = append(engines, NewEngine(partialTestDB(t, "part", rows, func(i int) bool { return i%k == s })))
	}
	full := NewEngine(partialTestDB(t, "full", rows, nil))
	for _, q := range partialTestQueries() {
		var parts []*ScanPartial
		for _, eng := range engines {
			p, err := eng.ScanPartialContext(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(p)
			if err != nil {
				t.Fatal(err)
			}
			var back ScanPartial
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatal(err)
			}
			parts = append(parts, &back)
		}
		got, err := FinalizeScanPartials(q, parts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.EvaluateContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: direct %v, sharded %v", q.Key(), want, got)
		}
	}
}

func TestMergeCubePartialsRejectsMismatch(t *testing.T) {
	if _, err := MergeCubePartials(nil); err == nil {
		t.Fatal("empty merge must error")
	}
	e := NewEngine(partialTestDB(t, "d", 50, nil))
	reqA := CubeRequest{Tables: []string{"fact"}, Dims: []DimSpec{{Col: ColumnRef{Table: "fact", Column: "cat"}, Literals: []string{"red"}}}}
	reqB := CubeRequest{Tables: []string{"fact"}, Dims: []DimSpec{{Col: ColumnRef{Table: "fact", Column: "tag"}, Literals: []string{"x"}}}}
	pa, err := e.CubePartialFor(context.Background(), reqA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := e.CubePartialFor(context.Background(), reqB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCubePartials([]*CubePartial{pa, pb}); err == nil {
		t.Fatal("mismatched dims must be rejected")
	}
}
