//go:build race

package sqlexec

// See race_off_test.go.
const raceEnabled = true
