package sqlexec

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"aggchecker/internal/db"
)

// Window pools EvaluateBatch submissions from concurrently-checked
// documents into one planning window, so N documents about the same tables
// pay roughly one document's worth of cube passes. Each participant
// registers with Join/Leave; its per-iteration claim batches then park in
// the window instead of executing immediately. A window flushes — merging
// every parked batch into one EvaluateBatch over the shared engine — when
// all active participants have a batch parked, when the parked count
// reaches MaxPending, or when the flush deadline expires (participants
// whose EM phase runs long never stall the others for more than
// FlushDelay).
//
// Batches are grouped by pinned snapshot version and each group flushes as
// its own merged execution: documents pinned before and after an append
// must not share passes, or their answers would not match isolated checks.
// Within a group, merging is answer-preserving by construction — the
// planner unions literal pools and dimension sets, and a cube answers each
// query from the cell keyed by that query's own predicates, so widening a
// pass with another document's literals or dimensions never changes a
// covered query's value. The window additionally accumulates a
// corpus-lifetime literal pool: merged literal sets converge as the corpus
// streams through, keeping cube shapes stable (sameDims) so later
// documents hit the cache instead of forcing recomputes.
type Window struct {
	eng        *Engine
	maxPending int
	flushDelay time.Duration
	workers    int

	mu      sync.Mutex
	active  int // participants between Join and Leave
	waiting int // batches parked across all groups
	groups  map[uint64]*windowGroup
	timer   *time.Timer

	poolMu sync.Mutex
	pool   map[string]map[string]bool // corpus-lifetime literal pool
}

// WindowConfig tunes a Window; zero values select the defaults.
type WindowConfig struct {
	// MaxPending flushes the window once this many batches are parked,
	// whatever the participant count (default 64).
	MaxPending int
	// FlushDelay bounds how long a parked batch waits for co-travellers
	// before a partial window flushes anyway (default 10ms).
	FlushDelay time.Duration
	// Workers, when > 0, overrides the worker bound of merged executions;
	// otherwise the widest member bound wins.
	Workers int
}

const (
	defaultWindowMaxPending = 64
	defaultWindowFlushDelay = 10 * time.Millisecond
)

type windowGroup struct {
	version uint64
	snap    *db.Snapshot
	reqs    []*windowReq
}

type windowReq struct {
	ctx     context.Context
	queries []Query
	opts    BatchOptions
	done    chan []float64 // buffered: the flusher never blocks on a member
}

// NewWindow creates a planning window over the engine.
func NewWindow(e *Engine, cfg WindowConfig) *Window {
	w := &Window{
		eng:        e,
		maxPending: cfg.MaxPending,
		flushDelay: cfg.FlushDelay,
		workers:    cfg.Workers,
		groups:     make(map[uint64]*windowGroup),
		pool:       make(map[string]map[string]bool),
	}
	if w.maxPending <= 0 {
		w.maxPending = defaultWindowMaxPending
	}
	if w.flushDelay <= 0 {
		w.flushDelay = defaultWindowFlushDelay
	}
	return w
}

// Engine returns the engine merged executions run on.
func (w *Window) Engine() *Engine { return w.eng }

// Join registers one participant (a document check). Every participant
// must Leave when its check ends, or parked batches from the others wait
// out the flush deadline each iteration.
func (w *Window) Join() {
	w.mu.Lock()
	w.active++
	w.mu.Unlock()
}

// Leave deregisters a participant and flushes the window if everyone still
// active is already parked (the leaver was the batch the window was
// waiting for).
func (w *Window) Leave() {
	w.mu.Lock()
	if w.active > 0 {
		w.active--
	}
	var groups []*windowGroup
	if w.waiting > 0 && w.waiting >= w.active {
		groups = w.takeLocked()
	}
	w.mu.Unlock()
	w.flushGroups(groups)
}

// EvaluateBatch parks the batch in the window and blocks until a flush
// answers it (positionally, like Engine.EvaluateBatch). When ctx is
// cancelled before the flush delivers, every slot reads NaN — the same
// contract a cancelled Engine.EvaluateBatch honors.
func (w *Window) EvaluateBatch(ctx context.Context, queries []Query, opts BatchOptions) []float64 {
	if len(queries) == 0 {
		return nil
	}
	w.eng.Stats.WindowBatches.Add(1)
	w.mergePool(opts.Pool)

	snap := w.eng.snapshotFor(ctx)
	r := &windowReq{ctx: ctx, queries: queries, opts: opts, done: make(chan []float64, 1)}

	w.mu.Lock()
	g := w.groups[snap.Version()]
	if g == nil {
		g = &windowGroup{version: snap.Version(), snap: snap}
		w.groups[snap.Version()] = g
	}
	g.reqs = append(g.reqs, r)
	w.waiting++
	var toFlush []*windowGroup
	if w.waiting >= w.active || w.waiting >= w.maxPending {
		toFlush = w.takeLocked()
	} else if w.timer == nil {
		w.timer = time.AfterFunc(w.flushDelay, w.timerFlush)
	}
	w.mu.Unlock()

	w.flushGroups(toFlush)

	select {
	case vals := <-r.done:
		return vals
	case <-ctx.Done():
		out := make([]float64, len(queries))
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
}

func (w *Window) timerFlush() {
	w.mu.Lock()
	w.timer = nil
	groups := w.takeLocked()
	w.mu.Unlock()
	w.flushGroups(groups)
}

// takeLocked detaches every parked group for flushing. Callers hold w.mu.
func (w *Window) takeLocked() []*windowGroup {
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	if w.waiting == 0 {
		return nil
	}
	out := make([]*windowGroup, 0, len(w.groups))
	for _, g := range w.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].version < out[b].version })
	w.groups = make(map[uint64]*windowGroup)
	w.waiting = 0
	return out
}

func (w *Window) flushGroups(groups []*windowGroup) {
	for _, g := range groups {
		w.flushGroup(g)
	}
}

// flushGroup merges one snapshot-version group's batches into a single
// EvaluateBatch and slices the results back to the members. It runs on the
// goroutine that triggered the flush (the last submitter, a leaver, or the
// deadline timer).
func (w *Window) flushGroup(g *windowGroup) {
	if g == nil || len(g.reqs) == 0 {
		return
	}
	e := w.eng
	e.Stats.WindowFlushes.Add(1)

	all := make([]Query, 0, 64)
	offs := make([]int, len(g.reqs)+1)
	workers := 0
	for i, r := range g.reqs {
		offs[i] = len(all)
		all = append(all, r.queries...)
		if r.opts.Workers > workers {
			workers = r.opts.Workers
		}
	}
	offs[len(g.reqs)] = len(all)
	if w.workers > 0 {
		workers = w.workers
	}
	pool := w.snapshotPool()

	if len(g.reqs) > 1 {
		w.countSharedPasses(g, pool)
	}

	// Execute under a context pinned to the group's snapshot and cancelled
	// only when EVERY member context is done: one cancelled document must
	// not trash the answers the other members are waiting on. The watcher
	// goroutine is released through stop when the flush finishes first
	// (member contexts that are never cancelled must not leak it).
	base, cancel := context.WithCancel(context.Background())
	stop := make(chan struct{})
	go func() {
		for _, r := range g.reqs {
			select {
			case <-r.ctx.Done():
			case <-stop:
				return
			}
		}
		cancel()
	}()
	mctx := WithSnapshot(base, g.snap)
	if ov := overrideFor(g.reqs[0].ctx); ov != nil {
		// Per-request scan tuning (scan workers, zone maps) carries over
		// from the members; audit members share one checker's settings, so
		// the first request is representative.
		mctx = context.WithValue(mctx, execCtxKey{}, ov)
	}
	vals := e.EvaluateBatch(mctx, all, BatchOptions{Pool: pool, Workers: workers})
	close(stop)
	cancel()
	for i, r := range g.reqs {
		r.done <- vals[offs[i]:offs[i+1]]
	}
}

// countSharedPasses plans the merged batch the way EvaluateBatch is about
// to and records how many cube passes serve queries from more than one
// member — the economics the audit report surfaces. A query submitted
// identically by two members counts its pass as shared too: after
// deduplication one pass answers both documents.
func (w *Window) countSharedPasses(g *windowGroup, pool map[string][]string) {
	e := w.eng
	uniqIdx := make(map[string]int)
	var uniq []Query
	var members []map[int]bool // uniq index -> member set
	for i, r := range g.reqs {
		for _, q := range r.queries {
			k := q.Key()
			j, ok := uniqIdx[k]
			if !ok {
				j = len(uniq)
				uniqIdx[k] = j
				uniq = append(uniq, q)
				members = append(members, make(map[int]bool, 2))
			}
			members[j][i] = true
		}
	}
	plan := PlanCubesOpt(uniq, e.DefaultTable(), PlanOptions{
		Pool:       pool,
		MergeSmall: e.CachingEnabled(),
		Pushdown:   e.PushdownEnabled(),
	})
	for _, p := range plan.Cubes {
		seen := make(map[int]bool, len(g.reqs))
		for _, qi := range p.QueryIdx {
			for m := range members[qi] {
				seen[m] = true
			}
		}
		if len(seen) > 1 {
			e.Stats.SharedPasses.Add(1)
		}
	}
}

// mergePool folds one batch's literal pool into the window's
// corpus-lifetime pool. The pool only grows, so cube literal sets converge
// across documents and cached cubes keep their shape (sameDims) instead of
// recomputing per document.
func (w *Window) mergePool(p map[string][]string) {
	if len(p) == 0 {
		return
	}
	w.poolMu.Lock()
	for col, lits := range p {
		set := w.pool[col]
		if set == nil {
			set = make(map[string]bool, len(lits))
			w.pool[col] = set
		}
		for _, l := range lits {
			set[l] = true
		}
	}
	w.poolMu.Unlock()
}

func (w *Window) snapshotPool() map[string][]string {
	w.poolMu.Lock()
	defer w.poolMu.Unlock()
	out := make(map[string][]string, len(w.pool))
	for col, set := range w.pool {
		lits := make([]string, 0, len(set))
		for l := range set {
			lits = append(lits, l)
		}
		sort.Strings(lits)
		out[col] = lits
	}
	return out
}
