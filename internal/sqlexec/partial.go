package sqlexec

import (
	"context"
	"fmt"
	"math"
	"sort"

	"aggchecker/internal/db"
)

// This file implements the transportable form of execution results used by
// sharded scatter-gather execution (package shard): a worker runs the normal
// vectorized kernel over its partition and exports the resulting
// accumulators as a CubePartial or ScanPartial; the coordinator folds the
// per-shard partials back together with the same addAccumulators algebra
// that merges delta scans, so a K-shard merge is exact in precisely the way
// mergeAppend is (counts, min/max, and distinct sets always; float sums
// regroup at shard boundaries, bit-for-bit for integer-valued data).
//
// Two representation rules make partials portable across processes:
//
//   - Floats travel as IEEE-754 bit patterns (uint64), because accumulators
//     legitimately hold ±Inf (empty min/max) and NaN, which JSON cannot
//     encode as numbers.
//   - Distinct keys for string columns are canonicalized from per-partition
//     dictionary codes — which assign different codes to the same value on
//     different shards — to an FNV-64 hash of the dictionary string, so
//     cross-shard unions count distinct values, not distinct codes. Numeric
//     distinct keys (float bits) are canonical already.

// CubeRequest is the wire form of one cube pass fanned out to shard
// workers: the join scope, the dimension specs (columns + literal sets),
// and the aggregate requests to track.
type CubeRequest struct {
	Tables []string     `json:"tables"`
	Dims   []DimSpec    `json:"dims"`
	Reqs   []AggRequest `json:"reqs"`
}

// ScanRequest is the wire form of one direct query fanned out to shard
// workers.
type ScanRequest struct {
	Query Query `json:"query"`
}

// PartialAcc is one accumulator in transit.
type PartialAcc struct {
	Rows    int64  `json:"rows"`
	NonNull int64  `json:"non_null"`
	SumBits uint64 `json:"sum_bits"`
	MinBits uint64 `json:"min_bits"`
	MaxBits uint64 `json:"max_bits"`
	// Distinct holds the canonical distinct keys (sorted); HasDistinct
	// distinguishes an empty tracked set from distinct-counting disabled.
	HasDistinct bool     `json:"has_distinct,omitempty"`
	Distinct    []uint64 `json:"distinct,omitempty"`
}

// PartialCell is one cube cell in transit: the cell key plus one
// accumulator per tracked column (index 0 = star; nil = untouched slot).
type PartialCell struct {
	Key  [maxCubeDims]int16 `json:"key"`
	Accs []*PartialAcc      `json:"accs"`
}

// PartialCol is one tracked aggregation column in transit (star excluded).
type PartialCol struct {
	Table    string `json:"table"`
	Column   string `json:"column"`
	Distinct bool   `json:"distinct,omitempty"`
}

// CubePartial is one shard's share of a cube pass: every cell of the cube
// lattice over the shard's rows, with canonical distinct keys and
// bit-pattern floats. Cells are sorted by key so the wire form is
// deterministic.
type CubePartial struct {
	Tables  []string      `json:"tables"`
	Dims    []DimSpec     `json:"dims"`
	Cols    []PartialCol  `json:"cols"`
	Cells   []PartialCell `json:"cells"`
	Rows    int64         `json:"rows"`    // joined rows the shard scanned
	Version uint64        `json:"version"` // shard snapshot version
}

// ScanPartial is one shard's share of a direct query: the numerator and
// (ratio aggregates) denominator accumulators plus the scan-pipeline
// counters of the shard's pass.
type ScanPartial struct {
	Main     *PartialAcc `json:"main"`
	Base     *PartialAcc `json:"base,omitempty"`
	Scanned  int64       `json:"scanned"`
	Pruned   int64       `json:"pruned"`
	RowsRead int64       `json:"rows_read"`
}

// distinctHash canonicalizes a dictionary string into the shard-portable
// distinct-key space (FNV-1a 64).
func distinctHash(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// dictRemap builds the code -> canonical-hash table for one snapshot
// dictionary, or nil when the column is not dictionary-encoded.
func dictRemap(cv *db.ColView) []uint64 {
	dict := cv.Dictionary()
	if dict == nil {
		return nil
	}
	remap := make([]uint64, len(dict))
	for c, v := range dict {
		remap[c] = distinctHash(v)
	}
	return remap
}

// exportAcc converts an accumulator to wire form, remapping string distinct
// keys (dictionary codes) through remap when non-nil.
func exportAcc(a *accumulator, remap []uint64) *PartialAcc {
	if a == nil {
		return nil
	}
	w := &PartialAcc{
		Rows:    a.rows,
		NonNull: a.nonNull,
		SumBits: math.Float64bits(a.sum),
		MinBits: math.Float64bits(a.min),
		MaxBits: math.Float64bits(a.max),
	}
	if a.distinct != nil {
		w.HasDistinct = true
		w.Distinct = make([]uint64, 0, len(a.distinct))
		for k := range a.distinct {
			if remap != nil && k < uint64(len(remap)) {
				k = remap[k]
			}
			w.Distinct = append(w.Distinct, k)
		}
		sort.Slice(w.Distinct, func(i, j int) bool { return w.Distinct[i] < w.Distinct[j] })
	}
	return w
}

// importAcc converts a wire accumulator back to the in-memory form.
func importAcc(w *PartialAcc) *accumulator {
	if w == nil {
		return nil
	}
	a := &accumulator{
		rows:    w.Rows,
		nonNull: w.NonNull,
		sum:     math.Float64frombits(w.SumBits),
		min:     math.Float64frombits(w.MinBits),
		max:     math.Float64frombits(w.MaxBits),
	}
	if w.HasDistinct {
		a.distinct = make(map[uint64]struct{}, len(w.Distinct))
		for _, k := range w.Distinct {
			a.distinct[k] = struct{}{}
		}
	}
	return a
}

// CubePartialFor runs (or serves from cache) the requested cube pass over
// this engine's database and exports it in wire form — the shard-worker
// side of sharded cube execution. Distinct sets of string columns are
// canonicalized through the snapshot dictionary, so partials from engines
// with different dictionary code assignments merge correctly.
func (e *Engine) CubePartialFor(ctx context.Context, req CubeRequest) (*CubePartial, error) {
	res, err := e.CubeForContext(ctx, req.Tables, req.Dims, req.Reqs)
	if err != nil {
		return nil, err
	}
	snap := e.snapshotFor(ctx)
	view, err := e.viewAt(snap, req.Tables)
	if err != nil {
		return nil, err
	}
	p := &CubePartial{
		Tables:  append([]string(nil), res.Tables...),
		Dims:    res.Dims,
		Rows:    int64(view.NumRows()),
		Version: snap.Version(),
	}
	remaps := make([][]uint64, len(res.cols))
	for i, tc := range res.cols {
		if i > 0 {
			p.Cols = append(p.Cols, PartialCol{Table: tc.ref.Table, Column: tc.ref.Column, Distinct: tc.needDistinct})
		}
		if i == 0 || !tc.needDistinct {
			continue
		}
		acc, err := view.Accessor(tc.ref.Table, tc.ref.Column)
		if err != nil {
			return nil, err
		}
		remaps[i] = dictRemap(acc.Column())
	}
	p.Cells = make([]PartialCell, 0, len(res.cells))
	for key, cell := range res.cells {
		pc := PartialCell{Key: key, Accs: make([]*PartialAcc, len(cell))}
		for i, a := range cell {
			pc.Accs[i] = exportAcc(a, remaps[i])
		}
		p.Cells = append(p.Cells, pc)
	}
	sort.Slice(p.Cells, func(i, j int) bool {
		a, b := p.Cells[i].Key, p.Cells[j].Key
		for d := 0; d < maxCubeDims; d++ {
			if a[d] != b[d] {
				return a[d] < b[d]
			}
		}
		return false
	})
	return p, nil
}

// MergeCubePartials folds per-shard cube partials — in the given order,
// which the coordinator fixes to shard 0..K-1 so merges are deterministic —
// into an answerable CubeResult, exactly as mergeAppend folds a delta scan:
// counts and sums add, min/max compare (earlier shard wins ties), distinct
// sets union in the canonical key space. All partials must carry the same
// scope, dimension specs, and tracked columns.
func MergeCubePartials(parts []*CubePartial) (*CubeResult, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("sqlexec: no cube partials to merge")
	}
	first := parts[0]
	cols := make([]trackedCol, 0, len(first.Cols))
	for _, c := range first.Cols {
		cols = append(cols, trackedCol{ref: ColumnRef{Table: c.Table, Column: c.Column}, needDistinct: c.Distinct})
	}
	r, err := newCubeResultWithCols(first.Tables, first.Dims, cols)
	if err != nil {
		return nil, err
	}
	sig := cubeSignature(first.Tables, first.Dims, nil)
	for pi, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("sqlexec: nil cube partial at shard %d", pi)
		}
		if pi > 0 {
			if cubeSignature(p.Tables, p.Dims, nil) != sig || !sameDims(first.Dims, p.Dims) || !samePartialCols(first.Cols, p.Cols) {
				return nil, fmt.Errorf("sqlexec: cube partial %d does not match shard 0 (scope, dims, or columns differ)", pi)
			}
		}
		for _, cell := range p.Cells {
			if len(cell.Accs) != len(r.cols) {
				return nil, fmt.Errorf("sqlexec: cube partial %d cell has %d accumulators, want %d", pi, len(cell.Accs), len(r.cols))
			}
			imported := make([]*accumulator, len(cell.Accs))
			for i, w := range cell.Accs {
				imported[i] = importAcc(w)
			}
			prev, ok := r.cells[cell.Key]
			if !ok {
				r.cells[cell.Key] = imported
				continue
			}
			for i := range prev {
				prev[i] = addAccumulators(prev[i], imported[i])
			}
		}
	}
	// Fill holes for slots no shard touched, mirroring merged()'s defensive
	// normalization: readers expect non-nil accumulators in present cells.
	for _, cell := range r.cells {
		for i := range cell {
			if cell[i] == nil {
				cell[i] = newAccumulator(r.cols[i].needDistinct)
			}
		}
	}
	return r, nil
}

func samePartialCols(a, b []PartialCol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ScanPartialContext runs one direct query over this engine's database and
// exports the un-finalized accumulators — the shard-worker side of sharded
// direct evaluation. The scan itself is the standard vectorized pipeline
// (zone pruning, selection vectors, morsel split on a shared scheduler).
func (e *Engine) ScanPartialContext(ctx context.Context, q Query) (*ScanPartial, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tables := q.Tables(e.DefaultTable())
	view, err := e.viewAt(e.snapshotFor(ctx), tables)
	if err != nil {
		return nil, err
	}
	e.Stats.DirectQueries.Add(1)
	ds, err := newDirectScan(view, q, e.zoneMapsFor(ctx))
	if err != nil {
		return nil, err
	}
	total, err := e.runDirect(ctx, view, ds)
	if err != nil {
		return nil, err
	}
	var remap []uint64
	if q.Agg == CountDistinct && !ds.agg.star && ds.agg.isStr {
		remap = dictRemap(ds.agg.acc.Column())
	}
	return &ScanPartial{
		Main:     exportAcc(total.main, remap),
		Base:     exportAcc(total.base, nil),
		Scanned:  total.scanned,
		Pruned:   total.pruned,
		RowsRead: total.rowsRead,
	}, nil
}

// FinalizeScanPartials folds per-shard scan partials (in shard order) and
// finalizes the aggregate, preserving the ratio-aggregate base contract:
// every shard contributed its own denominator rows, so the merged base is
// the global denominator.
func FinalizeScanPartials(q Query, parts []*ScanPartial) (float64, error) {
	if len(parts) == 0 {
		return math.NaN(), fmt.Errorf("sqlexec: no scan partials to merge")
	}
	var main, base *accumulator
	for i, p := range parts {
		if p == nil {
			return math.NaN(), fmt.Errorf("sqlexec: nil scan partial at shard %d", i)
		}
		main = addAccumulators(main, importAcc(p.Main))
		if b := importAcc(p.Base); b != nil {
			base = addAccumulators(base, b)
		}
	}
	if main == nil {
		main = newAccumulator(q.Agg == CountDistinct)
	}
	return main.finalize(q.Agg, q.AggCol.IsStar(), base), nil
}
