package sqlexec

import (
	"context"
	"runtime"
)

// This file is the unified execution-options surface of the engine: one
// functional-options type configures an engine at construction
// (NewEngine(d, opts...)), retunes it atomically at runtime
// (Engine.Tune(opts...)), and — for the per-request subset — overrides a
// single request through its context (ContextWithOptions). It replaces the
// Set* mutator sprawl; the old methods survive as thin deprecated wrappers.

// execOptions collects the knobs an ExecOption list sets. Pointer fields
// distinguish "not mentioned" from an explicit value, so Tune only touches
// the knobs its options name.
type execOptions struct {
	scanWorkers     *int
	zoneMaps        *bool
	scalarKernel    *bool
	caching         *bool
	pushdown        *bool
	scheduler       *Scheduler
	schedulerSet    bool
	cubeCacheBudget *int64
}

// ExecOption configures engine execution: accepted by NewEngine, applied
// atomically at runtime by Engine.Tune, and (WithScanWorkers, WithZoneMaps
// only) carried per request by ContextWithOptions.
type ExecOption func(*execOptions)

// WithScanWorkers bounds how many workers one cube pass or direct scan may
// occupy at once (its morsels in flight on the shared scheduler, or its
// private row-range partials without one). n <= 0 restores the default:
// the scheduler's pool width when one is installed, min(GOMAXPROCS,
// defaultScanWorkers) otherwise. Honored per request by
// ContextWithOptions.
func WithScanWorkers(n int) ExecOption {
	return func(o *execOptions) { o.scanWorkers = &n }
}

// WithZoneMaps toggles zone-map pruning in the shared scan pipeline. With
// pruning off, direct scans and cube passes process every block; results
// are identical either way (pruning only skips provably irrelevant rows).
// Honored per request by ContextWithOptions.
func WithZoneMaps(on bool) ExecOption {
	return func(o *execOptions) { o.zoneMaps = &on }
}

// WithScalarKernel routes cube passes to the legacy scalar interpreter
// (row-at-a-time, map-keyed cell store) instead of the vectorized columnar
// kernel — the differential-testing oracle and operational escape hatch;
// both kernels produce identical results.
func WithScalarKernel(on bool) ExecOption {
	return func(o *execOptions) { o.scalarKernel = &on }
}

// WithCaching toggles the cube-result cache (Table 6's "+ Caching" row
// turns it off to isolate the effect of query merging). Turning it off
// also drops already-cached results.
func WithCaching(on bool) ExecOption {
	return func(o *execOptions) { o.caching = &on }
}

// WithSelectionPushdown toggles selection-vector pushdown in the batch
// planner (on by default): queries sharing an equality predicate may merge
// into one filtered cube pass whose kernel compacts each scan segment
// through the shared predicate's selection vector before accumulating.
// Results are bit-for-bit identical either way — turning it off is the
// operational escape hatch and the benchmark baseline toggle.
func WithSelectionPushdown(on bool) ExecOption {
	return func(o *execOptions) { o.pushdown = &on }
}

// WithCubeCacheBudget bounds the cube cache's estimated resident bytes
// (the cost-aware cache policy's sweep target). n <= 0 removes the bound.
// Publishes that push the cache over the budget trigger a score-ordered
// eviction sweep (buildNanos×(1+hits)/bytes ascending: cheap-to-rebuild,
// rarely-hit giants evict first); a single result larger than the whole
// budget is served but never cached. Results are identical at any budget —
// only rebuild work changes.
func WithCubeCacheBudget(n int64) ExecOption {
	return func(o *execOptions) { o.cubeCacheBudget = &n }
}

// WithScheduler installs a shared morsel scheduler: the engine's cube
// passes and large direct scans then decompose into zone-aligned morsels
// dispatched on the scheduler's pool — shared fairly with every other
// engine using it — instead of sizing private goroutine pools. nil
// detaches the engine (private pools again). The engine does not own the
// scheduler; whoever created it calls Close.
func WithScheduler(s *Scheduler) ExecOption {
	return func(o *execOptions) { o.scheduler = s; o.schedulerSet = true }
}

// Tune applies options to a live engine. Each knob is an independent
// atomic: concurrent requests observe either the old or the new value,
// never a torn mix of one knob.
func (e *Engine) Tune(opts ...ExecOption) {
	var o execOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.scanWorkers != nil {
		e.scanWorkers.Store(int64(*o.scanWorkers))
	}
	if o.zoneMaps != nil {
		e.zoneMaps.Store(*o.zoneMaps)
	}
	if o.scalarKernel != nil {
		e.scalarKernel.Store(*o.scalarKernel)
	}
	if o.pushdown != nil {
		e.pushdown.Store(*o.pushdown)
	}
	if o.schedulerSet {
		e.sched.Store(o.scheduler)
	}
	if o.cubeCacheBudget != nil {
		e.cubeCacheBudget.Store(*o.cubeCacheBudget)
		e.maybeEvict()
	}
	if o.caching != nil {
		e.caching.Store(*o.caching)
		if !*o.caching {
			e.ResetCache()
		}
	}
}

// execCtxKey carries per-request execution overrides through a context.
type execCtxKey struct{}

// execOverride is the per-request subset of the execution options: the two
// knobs that are safe to vary between concurrent requests on one shared
// engine (they parameterize a single scan, not shared cache state).
type execOverride struct {
	scanWorkers *int
	zoneMaps    *bool
}

// ContextWithOptions returns a context overriding execution options for
// every engine read under it. Only WithScanWorkers and WithZoneMaps are
// honored — the per-request knobs; kernel, caching, and scheduler options
// configure shared engine state and are ignored here. Overrides stack:
// unset knobs fall through to an enclosing override, then to the engine.
func ContextWithOptions(ctx context.Context, opts ...ExecOption) context.Context {
	var o execOptions
	for _, opt := range opts {
		opt(&o)
	}
	ov := &execOverride{scanWorkers: o.scanWorkers, zoneMaps: o.zoneMaps}
	if prev, ok := ctx.Value(execCtxKey{}).(*execOverride); ok && prev != nil {
		if ov.scanWorkers == nil {
			ov.scanWorkers = prev.scanWorkers
		}
		if ov.zoneMaps == nil {
			ov.zoneMaps = prev.zoneMaps
		}
	}
	return context.WithValue(ctx, execCtxKey{}, ov)
}

// overrideFor extracts the request's execution override, if any.
func overrideFor(ctx context.Context) *execOverride {
	ov, _ := ctx.Value(execCtxKey{}).(*execOverride)
	return ov
}

// zoneMapsFor resolves zone-map pruning for one request: the context
// override when present, the engine setting otherwise.
func (e *Engine) zoneMapsFor(ctx context.Context) bool {
	if ov := overrideFor(ctx); ov != nil && ov.zoneMaps != nil {
		return *ov.zoneMaps
	}
	return e.zoneMaps.Load()
}

// rawScanWorkersFor resolves the request's scan-worker bound before
// defaulting (<= 0 means "use the default").
func (e *Engine) rawScanWorkersFor(ctx context.Context) int {
	if ov := overrideFor(ctx); ov != nil && ov.scanWorkers != nil {
		return *ov.scanWorkers
	}
	return int(e.scanWorkers.Load())
}

// resolveScanWorkers turns a raw bound into the effective one. With a
// shared scheduler the default is the pool width (the scheduler is the
// global throttle, so a pass may occupy the whole pool when it is idle);
// without one it stays min(GOMAXPROCS, defaultScanWorkers) — private
// per-pass pools under a saturated batch pool must stay small or
// goroutines and partial accumulators multiply quadratically.
func (e *Engine) resolveScanWorkers(raw int) int {
	if raw > 0 {
		return raw
	}
	if s := e.sched.Load(); s != nil {
		return s.Workers()
	}
	w := runtime.GOMAXPROCS(0)
	if w > defaultScanWorkers {
		w = defaultScanWorkers
	}
	return w
}

// ScanWorkers returns the effective per-scan worker bound an engine-level
// request resolves to right now — the number benchmark records should
// report for "auto" (0) settings.
func (e *Engine) ScanWorkers() int {
	return e.resolveScanWorkers(int(e.scanWorkers.Load()))
}

// Scheduler returns the shared morsel scheduler the engine submits to, or
// nil when it runs private per-pass pools.
func (e *Engine) Scheduler() *Scheduler { return e.sched.Load() }
