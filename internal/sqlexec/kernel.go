package sqlexec

import (
	"context"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"aggchecker/internal/db"
	"aggchecker/internal/vec"
)

// This file implements the vectorized columnar execution kernel for cube
// scans — the replacement for the row-at-a-time interpreter in cube.go.
// The merging phase (§6.2–6.3) makes one cube pass answer hundreds of
// related claim candidates, so this scan is the system's hot path.
//
// The kernel processes the join view in blocks of kernelBlockRows rows:
//
//  1. Each dimension column is coded into a dense offset vector per block.
//     String dimensions translate dictionary codes through a flat lookup
//     table; numeric dimensions run a branchless binary search over their
//     sorted literal values — no per-row map probes or hashes anywhere in
//     the scan. The coded value is already pre-multiplied by the
//     dimension's mixed-radix stride.
//  2. The cell store is a flat accumulator array over the bounded lattice:
//     each dimension contributes |literals|+2 codes (literal, other, any)
//     and at most maxCubeDims dimensions exist, so a cube cell is a single
//     mixed-radix index — no hash map in the scan loop. Per subset mask the
//     per-row cell indexes are one vector add away.
//  3. Sum/count/min/max accumulate in struct-of-arrays batch loops; exact
//     distinct counts use per-cell dictionary-code bitsets for string
//     columns and per-cell hash sets for numeric columns.
//  4. Large scans split into row-range partials executed by a bounded set
//     of workers and merged deterministically at the end, so one cube pass
//     parallelizes internally, not just across passes.
//
// Block reads go through the db block-access contract: zero-copy column
// slices on single-table views, batch gathers through the join-view row
// maps otherwise (Stats.DirectBlockReads / Stats.GatherBlockReads).

const (
	// kernelBlockRows is the number of joined rows a kernel block holds: a
	// balance between buffer locality (code vectors, gather buffers and the
	// index vector stay L1/L2-resident) and amortizing per-block overhead.
	// Context cancellation is checked once per block.
	kernelBlockRows = 4096

	// maxFlatCells bounds the dense lattice. Beyond this the flat
	// accumulator arrays would dominate memory (the lattice is mostly empty
	// for huge literal pools), so the pass falls back to the scalar kernel
	// and its sparse map cell store.
	maxFlatCells = 1 << 18
)

// kernelParallelMinRows is the minimum view size for splitting a cube pass
// into row-range partials; below it the partial arrays cost more than the
// scan. A variable so tests can exercise the partial-merge path on small
// inputs.
var kernelParallelMinRows = 1 << 16

// flatLatticeSize returns the dense cell count of the cube lattice (every
// dimension contributes |literals| codes plus "other" and "any"), or -1
// when it exceeds maxFlatCells and the dense kernel must not be used.
func flatLatticeSize(dims []DimSpec) int {
	size := 1
	for _, d := range dims {
		size *= len(d.Literals) + 2
		if size > maxFlatCells {
			return -1
		}
	}
	return size
}

// passConfig bundles the resolved execution settings of one cube pass or
// delta scan: the stats sink, the per-pass worker bound, kernel and
// zone-map selection, and the shared morsel scheduler (nil: private
// goroutine pool, the pre-scheduler behavior).
type passConfig struct {
	stats   *Stats
	workers int
	scalar  bool
	zones   bool
	sched   *Scheduler
	// filter is the shared predicate of a selection-pushdown pass (nil for
	// ordinary passes): the kernel compacts every segment through the
	// filter's selection vector before coding or accumulating anything, and
	// the resulting CubeResult answers only queries that carry the filter.
	filter *Predicate
}

// computeCube dispatches one cube pass: the vectorized kernel by default,
// the scalar interpreter when forced (WithScalarKernel) or when the
// literal sets blow the dense lattice bound. Both kernels produce
// bit-for-bit identical CubeResults (asserted by the differential tests in
// kernel_diff_test.go); pc.zones enables block pruning, which never
// changes results either.
func computeCube(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol, pc passConfig) (*CubeResult, error) {
	if pc.scalar || flatLatticeSize(dims) < 0 {
		if pc.stats != nil {
			pc.stats.ScalarPasses.Add(1)
		}
		return computeCubeScalarRange(ctx, view, tables, dims, cols, 0, view.NumRows(), pc.filter)
	}
	return computeCubeVectorized(ctx, view, tables, dims, cols, pc)
}

// computeCubeRange is the delta-scan entry point: it accumulates only
// joined rows [lo, hi) — the rows of blocks sealed after a cached cube's
// snapshot — into a partial CubeResult that CubeResult.mergeAppend folds
// into the published result. Kernel dispatch matches computeCube, so the
// partial is produced by exactly the code paths a full rebuild would use —
// including zone-map pruning: a delta block whose dimension domains miss
// every tracked literal takes the batched rolled-up update instead of the
// per-row coding loops (the "delta-aware zone maps" path).
func computeCubeRange(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol, lo, hi int, pc passConfig) (*CubeResult, error) {
	if pc.scalar || flatLatticeSize(dims) < 0 {
		if pc.stats != nil {
			pc.stats.ScalarPasses.Add(1)
		}
		return computeCubeScalarRange(ctx, view, tables, dims, cols, lo, hi, pc.filter)
	}
	return computeCubeVectorizedRange(ctx, view, tables, dims, cols, lo, hi, pc)
}

// vecDim codes one dimension column into pre-multiplied lattice offsets.
type vecDim struct {
	acc    db.ColumnAccessor
	isStr  bool
	direct bool
	// zones are the column's zone-map entries (nil on gather views or with
	// pruning disabled); litCodes the dictionary codes of the string
	// literals present in the dictionary, tested against zone domain
	// bitsets.
	zones    []db.ZoneEntry
	litCodes []int32
	// dictToOff maps a dictionary code directly to literalIndex*stride
	// (entries for non-literal values hold otherOff), replacing the scalar
	// kernel's per-row map probe with an array load.
	dictToOff []int32
	// litVals/litOffs code numeric dimensions: the distinct literal values
	// sorted ascending, with litOffs[i] = literalIndex*stride of
	// litVals[i]. Literal sets are tiny, so a branchless lower-bound
	// binary search over litVals beats the per-row map probe that used to
	// be the kernel's last hash (ROADMAP: numeric dimension coding).
	litVals  []float64
	litOffs  []int32
	stride   int32
	card     int32 // |literals|+2
	otherOff int32 // |literals| * stride
	anyOff   int32 // (|literals|+1) * stride
}

// zoneMisses reports whether zone zi provably contains none of the
// dimension's literals — every row of the segment then codes to "other".
// A dimension whose literal set is entirely absent from the data (no
// dictionary codes, no parseable values) misses every zone.
func (d *vecDim) zoneMisses(zi int) bool {
	if d.zones == nil || zi < 0 {
		return false
	}
	z := &d.zones[zi]
	if d.isStr {
		for _, c := range d.litCodes {
			if z.MayContainCode(c) {
				return false
			}
		}
		return true
	}
	for _, v := range d.litVals {
		if z.MayContainFloat(v) {
			return false
		}
	}
	return true
}

// vecCol reads one tracked aggregation column (index 0, star, is unused).
type vecCol struct {
	acc          db.ColumnAccessor
	isStr        bool
	direct       bool
	needDistinct bool
	dictLen      int
	// zones are the column's zone-map entries (nil on gather views or with
	// pruning disabled): a zone with zero NULLs unlocks the NULL-free fast
	// path per segment, an all-NULL zone skips the value read entirely.
	zones []db.ZoneEntry
	// noNulls lets the accumulation loop hoist the NULL branch out for
	// numeric columns whose null bitmap is empty.
	noNulls bool
}

// vecKernel is the immutable per-pass state shared by all partials.
type vecKernel struct {
	view *db.JoinView
	dims []vecDim
	cols []vecCol // parallel to CubeResult.cols
	size int      // flat lattice cell count
	// spans is the zone-aligned segmentation of the view's rows (nil on
	// gather views or with zone maps disabled: fixed-size chunks then).
	spans []db.ZoneSpan
	// cBase[mask] is the flat index of a row's cell under subset mask with
	// every masked dimension's offset still to be added: baseAny minus the
	// anyOff of each grouped dimension.
	cBase    []int32
	maskDims [][]int
	// maskOtherOff[mask] is the summed otherOff of the mask's dimensions:
	// cBase[mask]+maskOtherOff[mask] is the constant cell index of a fully
	// zone-pruned segment (every row codes to "other" on every dimension).
	maskOtherOff []int32
	// filter is the compiled shared predicate of a selection-pushdown pass
	// (nil otherwise): segments compact through its selection vector before
	// any coding or accumulation, in ascending row order, so the surviving
	// rows accumulate in exactly the order the scalar filtered oracle
	// processes them.
	filter *predEval
	stats  *Stats
}

func newVecKernel(view *db.JoinView, dims []DimSpec, r *CubeResult, size int, stats *Stats, zoneMaps bool, filter *Predicate) (*vecKernel, error) {
	k := &vecKernel{view: view, size: size, stats: stats}
	if zoneMaps {
		k.spans = view.ZoneSpans()
	}
	if filter != nil {
		pes, err := compilePreds(view, []Predicate{*filter}, zoneMaps)
		if err != nil {
			return nil, err
		}
		k.filter = &pes[0]
	}

	stride := int32(1)
	baseAny := int32(0)
	for _, d := range dims {
		acc, err := view.Accessor(d.Col.Table, d.Col.Column)
		if err != nil {
			return nil, err
		}
		vd := vecDim{acc: acc, isStr: acc.Column().Kind == db.KindString, direct: acc.Direct(), stride: stride}
		if k.spans != nil {
			vd.zones = acc.Zones()
		}
		nl := int32(len(d.Literals))
		vd.card = nl + 2
		vd.otherOff = nl * stride
		vd.anyOff = (nl + 1) * stride
		if vd.isStr {
			lut := make([]int32, len(acc.Column().Dictionary()))
			for c := range lut {
				lut[c] = vd.otherOff
			}
			for j, lit := range d.Literals {
				if code := acc.Column().CodeOf(lit); code >= 0 {
					lut[code] = int32(j) * stride
					vd.litCodes = append(vd.litCodes, code)
				}
			}
			vd.dictToOff = lut
		} else {
			// Duplicate literal values (e.g. "1" and "1.0") resolve to the
			// last literal's offset, matching the map semantics of the
			// scalar reference kernel.
			m := make(map[float64]int32, len(d.Literals))
			for j, lit := range d.Literals {
				if v, err := parseLiteralFloat(lit); err == nil {
					m[v] = int32(j) * stride
				}
			}
			vd.litVals = make([]float64, 0, len(m))
			for v := range m {
				vd.litVals = append(vd.litVals, v)
			}
			sort.Float64s(vd.litVals)
			vd.litOffs = make([]int32, len(vd.litVals))
			for j, v := range vd.litVals {
				vd.litOffs[j] = m[v]
			}
		}
		k.dims = append(k.dims, vd)
		baseAny += vd.anyOff
		stride *= vd.card
	}

	nsubsets := 1 << len(dims)
	k.cBase = make([]int32, nsubsets)
	k.maskDims = make([][]int, nsubsets)
	k.maskOtherOff = make([]int32, nsubsets)
	for mask := 0; mask < nsubsets; mask++ {
		c := baseAny
		for i := range dims {
			if mask&(1<<i) != 0 {
				c -= k.dims[i].anyOff
				k.maskDims[mask] = append(k.maskDims[mask], i)
				k.maskOtherOff[mask] += k.dims[i].otherOff
			}
		}
		k.cBase[mask] = c
	}

	k.cols = make([]vecCol, len(r.cols))
	for i := 1; i < len(r.cols); i++ {
		acc, err := view.Accessor(r.cols[i].ref.Table, r.cols[i].ref.Column)
		if err != nil {
			return nil, err
		}
		vc := vecCol{acc: acc, isStr: acc.Column().Kind == db.KindString, direct: acc.Direct(), needDistinct: r.cols[i].needDistinct}
		if k.spans != nil {
			vc.zones = acc.Zones()
		}
		if vc.isStr {
			vc.dictLen = len(acc.Column().Dictionary())
		} else {
			vc.noNulls = !acc.Column().HasNulls()
		}
		k.cols[i] = vc
	}
	return k, nil
}

// vecPartial holds the struct-of-arrays accumulator state of one row range.
type vecPartial struct {
	// rows is shared by every column: an accumulator's row count does not
	// depend on which column it tracks.
	rows []int64
	cols []vecColAcc // parallel to vecKernel.cols; index 0 (star) empty
	// baseRows counts every row of the range, including rows a pushdown
	// filter rejected — the Percentage denominator of a filtered cube
	// (always 0 on unfiltered passes).
	baseRows int64
}

type vecColAcc struct {
	nonNull         []int64
	sum, minv, maxv []float64             // numeric columns only
	bits            [][]uint64            // per-cell dictionary-code bitsets (string distinct)
	sets            []map[uint64]struct{} // per-cell value sets (numeric distinct)
}

// latticePool recycles the size-proportional flat accumulator arrays of
// vecPartials between cube passes of the same lattice size. Only the dense
// int64/float64 arrays are pooled: the per-cell bitset and set stores are
// adopted by merge() and fill() and must never be reused.
type latticePool struct {
	ints   sync.Pool // *[]int64
	floats sync.Pool // *[]float64
}

// latticePools maps lattice size -> *latticePool. Lattice sizes are bounded
// (maxFlatCells) and few in practice — one per distinct dimension shape.
var latticePools sync.Map

// latticePoolMisses counts fresh dense-array allocations (pool misses) — a
// test hook asserting that steady-state passes of a given lattice size run
// through the pool without allocating.
var latticePoolMisses atomic.Int64

func poolForSize(size int) *latticePool {
	if v, ok := latticePools.Load(size); ok {
		return v.(*latticePool)
	}
	v, _ := latticePools.LoadOrStore(size, &latticePool{})
	return v.(*latticePool)
}

func (p *latticePool) getInts(size int) []int64 {
	if v := p.ints.Get(); v != nil {
		s := *v.(*[]int64)
		for i := range s {
			s[i] = 0
		}
		return s
	}
	latticePoolMisses.Add(1)
	return make([]int64, size)
}

func (p *latticePool) getFloats(size int, fill float64) []float64 {
	if v := p.floats.Get(); v != nil {
		s := *v.(*[]float64)
		for i := range s {
			s[i] = fill
		}
		return s
	}
	latticePoolMisses.Add(1)
	s := make([]float64, size)
	if fill != 0 {
		for i := range s {
			s[i] = fill
		}
	}
	return s
}

func (p *latticePool) putInts(s []int64)     { p.ints.Put(&s) }
func (p *latticePool) putFloats(s []float64) { p.floats.Put(&s) }

func (k *vecKernel) newPartial() *vecPartial {
	lp := poolForSize(k.size)
	pt := &vecPartial{rows: lp.getInts(k.size), cols: make([]vecColAcc, len(k.cols))}
	for i := 1; i < len(k.cols); i++ {
		vc := &k.cols[i]
		ca := vecColAcc{nonNull: lp.getInts(k.size)}
		if !vc.isStr {
			ca.sum = lp.getFloats(k.size, 0)
			ca.minv = lp.getFloats(k.size, math.Inf(1))
			ca.maxv = lp.getFloats(k.size, math.Inf(-1))
		}
		if vc.needDistinct {
			if vc.isStr {
				ca.bits = make([][]uint64, k.size)
			} else {
				ca.sets = make([]map[uint64]struct{}, k.size)
			}
		}
		pt.cols[i] = ca
	}
	return pt
}

// releasePartial returns a partial's dense arrays to the lattice pool. Call
// only once the partial is dead: after it merged into an earlier-range
// partial, or after fill() exported the root to the sparse cell store. The
// bits/sets stores are not returned — merge and fill adopt their inner
// objects into longer-lived owners.
func (k *vecKernel) releasePartial(pt *vecPartial) {
	lp := poolForSize(k.size)
	lp.putInts(pt.rows)
	for i := 1; i < len(pt.cols); i++ {
		ca := &pt.cols[i]
		lp.putInts(ca.nonNull)
		if ca.sum != nil {
			lp.putFloats(ca.sum)
			lp.putFloats(ca.minv)
			lp.putFloats(ca.maxv)
		}
	}
	pt.rows, pt.cols = nil, nil
}

// scanRange accumulates joined rows [lo, hi) into a fresh partial,
// segment by segment through the shared pipeline segmenter. Zone maps are
// consulted before any data is read: a segment whose zones refute every
// literal of every dimension takes the batched rolled-up update (each
// subset mask accumulates into one constant "other" cell, dimension
// columns are never read), and per-dimension misses skip that dimension's
// read and coding loop. All accumulation stays in row order, so results
// remain bit-for-bit identical to the scalar interpreter.
func (k *vecKernel) scanRange(ctx context.Context, lo, hi int) (*vecPartial, error) {
	pt := k.newPartial()
	nd := len(k.dims)
	dimOffs := make([][]int32, nd)
	for i := range dimOffs {
		dimOffs[i] = make([]int32, kernelBlockRows)
	}
	idxBuf := make([]int32, kernelBlockRows)
	var fScratch []float64
	var cScratch []int32
	for i := range k.dims {
		if k.dims[i].isStr {
			cScratch = make([]int32, kernelBlockRows)
		} else {
			fScratch = make([]float64, kernelBlockRows)
		}
	}
	// Pushdown state: the filter's compare mask and selection vector, plus
	// compaction destinations for dimension blocks (tracked columns compact
	// into their colF/colC buffers below). fsel/fn name the segment's
	// surviving rows; fsel == nil means every row survives (no filter).
	var maskBuf []uint64
	var selBuf []int32
	var fCompact []float64
	var cCompact []int32
	var fsel []int32
	if k.filter != nil {
		maskBuf = make([]uint64, vec.MaskWords(kernelBlockRows))
		selBuf = make([]int32, kernelBlockRows)
		if k.filter.isStr && cScratch == nil {
			cScratch = make([]int32, kernelBlockRows)
		} else if !k.filter.isStr && fScratch == nil {
			fScratch = make([]float64, kernelBlockRows)
		}
		for i := range k.dims {
			if k.dims[i].isStr {
				cCompact = make([]int32, kernelBlockRows)
			} else {
				fCompact = make([]float64, kernelBlockRows)
			}
		}
	}
	// Gather buffers only for columns off the zero-copy path; the block
	// values must stay live across all subset masks, so they cannot share
	// one scratch buffer. A pushdown pass needs them for every column:
	// zero-copy blocks compact through the selection vector into them.
	colF := make([][]float64, len(k.cols))
	colC := make([][]int32, len(k.cols))
	for i := 1; i < len(k.cols); i++ {
		if k.cols[i].direct && k.filter == nil {
			continue
		}
		if k.cols[i].isStr {
			colC[i] = make([]int32, kernelBlockRows)
		} else {
			colF[i] = make([]float64, kernelBlockRows)
		}
	}
	blockF := make([][]float64, len(k.cols))
	blockC := make([][]int32, len(k.cols))

	var blocks, pruned, skipped, directReads, gatherReads int64
	countRead := func(direct bool) {
		if direct {
			directReads++
		} else {
			gatherReads++
		}
	}
	// readCols loads the tracked aggregation column blocks (zero-copy when
	// direct), skipping columns whose zone is entirely NULL — their rows
	// count, but no value can contribute. Under a pushdown filter each block
	// then compacts through fsel, preserving ascending row order (gathers
	// with ascending in-bounds indexes are overlap-safe, so a non-direct
	// block may compact within its own gather buffer).
	readCols := func(start, bn, zi int) {
		for i := 1; i < len(k.cols); i++ {
			vc := &k.cols[i]
			if vc.zones != nil && zi >= 0 && vc.zones[zi].AllNull() {
				blockF[i], blockC[i] = nil, nil
				continue
			}
			countRead(vc.direct)
			if vc.isStr {
				blockC[i], _ = vc.acc.CodeBlock(start, bn, colC[i])
				if fsel != nil {
					vec.GatherI32(colC[i][:len(fsel)], blockC[i], fsel)
					blockC[i] = colC[i][:len(fsel)]
				}
			} else {
				blockF[i], _ = vc.acc.FloatBlock(start, bn, colF[i])
				if fsel != nil {
					vec.GatherF64(colF[i][:len(fsel)], blockF[i], fsel)
					blockF[i] = colF[i][:len(fsel)]
				}
			}
		}
	}

	var dimMiss [maxCubeDims]bool
	for _, sg := range segmentsOf(k.spans, lo, hi) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start, bn, zi := sg.start, sg.n, sg.zone

		// Selection pushdown: compact the segment through the shared
		// predicate before anything else is read. Every row — selected or
		// not — still counts into baseRows (the Percentage denominator of
		// the filtered cube covers the whole view).
		en := bn
		fsel = nil
		if k.filter != nil {
			pt.baseRows += int64(bn)
			if k.filter.zoneMisses(zi) {
				pruned++
				skipped += int64(bn)
				continue
			}
			mask := maskBuf[:vec.MaskWords(bn)]
			countRead(k.filter.acc.Direct())
			if k.filter.isStr {
				codes, _ := k.filter.acc.CodeBlock(start, bn, cScratch)
				vec.CmpEqI32(codes, k.filter.code, mask)
			} else {
				vals, _ := k.filter.acc.FloatBlock(start, bn, fScratch)
				vec.CmpEqF64(vals, k.filter.val, mask)
			}
			en = vec.SelFromMask(mask, bn, selBuf)
			skipped += int64(bn - en)
			if en == 0 {
				pruned++
				continue
			}
			fsel = selBuf[:en]
		}

		allMiss := nd > 0
		for i := range k.dims {
			dimMiss[i] = k.dims[i].zoneMisses(zi)
			if !dimMiss[i] {
				allMiss = false
			}
		}

		if allMiss {
			// Batched rolled-up update: every row of the segment lands in
			// the constant all-"other" cell of each subset mask.
			pruned++
			readCols(start, bn, zi)
			for mask := range k.cBase {
				ix := k.cBase[mask] + k.maskOtherOff[mask]
				pt.rows[ix] += int64(en)
				for i := 1; i < len(k.cols); i++ {
					k.accumulateConst(pt, i, ix, zi, blockF[i], blockC[i])
				}
			}
			continue
		}
		blocks++

		// Code dimension columns into pre-multiplied offset vectors. A
		// dimension whose zone misses every literal codes to a constant
		// "other" without touching its column. Under a pushdown filter the
		// block first compacts through the selection vector, so only
		// surviving rows are coded.
		for i := range k.dims {
			d := &k.dims[i]
			offs := dimOffs[i][:en]
			if dimMiss[i] {
				oo := d.otherOff
				for r := range offs {
					offs[r] = oo
				}
				continue
			}
			countRead(d.direct)
			if d.isStr {
				codes, _ := d.acc.CodeBlock(start, bn, cScratch)
				if fsel != nil {
					vec.GatherI32(cCompact[:en], codes, fsel)
					codes = cCompact[:en]
				}
				// Dictionary code -> pre-multiplied lattice offset through
				// the flat LUT; NULL codes to "other".
				vec.LookupCodes(offs, codes, d.dictToOff, d.otherOff)
			} else {
				vals, _ := d.acc.FloatBlock(start, bn, fScratch)
				if fsel != nil {
					vec.GatherF64(fCompact[:en], vals, fsel)
					vals = fCompact[:en]
				}
				lvals, loffs := d.litVals, d.litOffs
				oo := d.otherOff
				nl := len(lvals)
				for r, v := range vals {
					off := oo
					if v == v && nl > 0 { // not NaN
						// Branchless lower bound over the sorted literal
						// values: the comparison compiles to a conditional
						// add, so the loop has no data-dependent branch and
						// no hash, just log2(|literals|) compares.
						base, n := 0, nl
						for n > 1 {
							half := n >> 1
							if lvals[base+half-1] < v {
								base += half
							}
							n -= half
						}
						if lvals[base] == v {
							off = loffs[base]
						}
					}
					offs[r] = off
				}
			}
		}

		readCols(start, bn, zi)

		// Accumulate each subset mask of the lattice.
		for mask := range k.cBase {
			idx := idxBuf[:en]
			c0 := k.cBase[mask]
			switch md := k.maskDims[mask]; len(md) {
			case 0:
				for r := range idx {
					idx[r] = c0
				}
			case 1:
				o0 := dimOffs[md[0]][:en]
				for r := range idx {
					idx[r] = c0 + o0[r]
				}
			case 2:
				o0, o1 := dimOffs[md[0]][:en], dimOffs[md[1]][:en]
				for r := range idx {
					idx[r] = c0 + o0[r] + o1[r]
				}
			default: // maxCubeDims == 3
				o0, o1, o2 := dimOffs[md[0]][:en], dimOffs[md[1]][:en], dimOffs[md[2]][:en]
				for r := range idx {
					idx[r] = c0 + o0[r] + o1[r] + o2[r]
				}
			}
			rows := pt.rows
			for _, ix := range idx {
				rows[ix]++
			}
			for i := 1; i < len(k.cols); i++ {
				k.accumulate(pt, i, idx, zi, blockF[i], blockC[i])
			}
		}
	}

	if k.stats != nil {
		k.stats.BlocksScanned.Add(blocks)
		k.stats.BlocksPruned.Add(pruned)
		k.stats.DirectBlockReads.Add(directReads)
		k.stats.GatherBlockReads.Add(gatherReads)
		if skipped > 0 {
			k.stats.PushdownRowsSkipped.Add(skipped)
		}
	}
	return pt, nil
}

// segNoNulls reports whether the column provably holds no NULL inside
// zone zi (column-wide bitmap, or the zone's own null count).
func (vc *vecCol) segNoNulls(zi int) bool {
	if vc.noNulls {
		return true
	}
	return vc.zones != nil && zi >= 0 && vc.zones[zi].NullCount == 0
}

// accumulate folds one column's block values into the cells named by idx.
// A nil block (all-NULL zone, read skipped) contributes nothing beyond the
// row counts already taken.
func (k *vecKernel) accumulate(pt *vecPartial, i int, idx []int32, zi int, vals []float64, codes []int32) {
	vc := &k.cols[i]
	ca := &pt.cols[i]
	if vc.isStr {
		if codes == nil {
			return
		}
		nonNull := ca.nonNull
		if !vc.needDistinct {
			for r, c := range codes {
				if c >= 0 {
					nonNull[idx[r]]++
				}
			}
			return
		}
		words := (vc.dictLen + 63) / 64
		for r, c := range codes {
			if c < 0 {
				continue
			}
			ix := idx[r]
			nonNull[ix]++
			bs := ca.bits[ix]
			if bs == nil {
				bs = make([]uint64, words)
				ca.bits[ix] = bs
			}
			bs[c>>6] |= 1 << (uint(c) & 63)
		}
		return
	}
	if vals == nil {
		return
	}
	nonNull, sum, minv, maxv := ca.nonNull, ca.sum, ca.minv, ca.maxv
	if vc.segNoNulls(zi) && !vc.needDistinct {
		// NULL-free fast path: pure struct-of-arrays batch loop, via the
		// dispatched scatter-accumulate primitive (strict row order — float
		// sums must stay bit-for-bit equal to the scalar interpreter).
		vec.AccumulateF64(idx, vals, nonNull, sum, minv, maxv)
		return
	}
	for r, v := range vals {
		if v != v { // NULL
			continue
		}
		ix := idx[r]
		nonNull[ix]++
		sum[ix] += v
		if v < minv[ix] {
			minv[ix] = v
		}
		if v > maxv[ix] {
			maxv[ix] = v
		}
		if vc.needDistinct {
			s := ca.sets[ix]
			if s == nil {
				s = make(map[uint64]struct{})
				ca.sets[ix] = s
			}
			s[math.Float64bits(v)] = struct{}{}
		}
	}
}

// accumulateConst folds one column's block values into the single cell ix
// — the fully zone-pruned path, where every row of the segment belongs to
// the same "other" cell per subset mask. Register-seeded running values
// keep the accumulation order identical to the per-row path, so even
// float sums stay bit-for-bit equal to the scalar interpreter.
func (k *vecKernel) accumulateConst(pt *vecPartial, i int, ix int32, zi int, vals []float64, codes []int32) {
	vc := &k.cols[i]
	ca := &pt.cols[i]
	if vc.isStr {
		if codes == nil {
			return
		}
		nn := int64(0)
		if !vc.needDistinct {
			// Pure non-NULL count: the dispatched sign-bit popcount.
			ca.nonNull[ix] += int64(vec.CountNonNegI32(codes))
			return
		}
		bs := ca.bits[ix]
		if bs == nil {
			bs = make([]uint64, (vc.dictLen+63)/64)
			ca.bits[ix] = bs
		}
		for _, c := range codes {
			if c < 0 {
				continue
			}
			nn++
			bs[c>>6] |= 1 << (uint(c) & 63)
		}
		ca.nonNull[ix] += nn
		return
	}
	if vals == nil {
		return
	}
	var set map[uint64]struct{}
	if vc.needDistinct {
		if set = ca.sets[ix]; set == nil {
			set = make(map[uint64]struct{})
			ca.sets[ix] = set
		}
	}
	nn := int64(0)
	s, mn, mx := ca.sum[ix], ca.minv[ix], ca.maxv[ix]
	for _, v := range vals {
		if v != v { // NULL
			continue
		}
		nn++
		s += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		if set != nil {
			set[math.Float64bits(v)] = struct{}{}
		}
	}
	ca.nonNull[ix] += nn
	ca.sum[ix], ca.minv[ix], ca.maxv[ix] = s, mn, mx
}

// merge folds another partial into pt (pt covers the earlier row range, so
// sums merge in deterministic range order).
func (pt *vecPartial) merge(o *vecPartial) {
	pt.baseRows += o.baseRows
	for i, v := range o.rows {
		pt.rows[i] += v
	}
	for ci := 1; ci < len(pt.cols); ci++ {
		a, b := &pt.cols[ci], &o.cols[ci]
		for i, v := range b.nonNull {
			a.nonNull[i] += v
		}
		if a.sum != nil {
			for i, v := range b.sum {
				a.sum[i] += v
			}
			for i, v := range b.minv {
				if v < a.minv[i] {
					a.minv[i] = v
				}
			}
			for i, v := range b.maxv {
				if v > a.maxv[i] {
					a.maxv[i] = v
				}
			}
		}
		if a.bits != nil {
			for i, bs := range b.bits {
				if bs == nil {
					continue
				}
				if a.bits[i] == nil {
					a.bits[i] = bs
					continue
				}
				dst := a.bits[i]
				for w, x := range bs {
					dst[w] |= x
				}
			}
		}
		if a.sets != nil {
			for i, s := range b.sets {
				if s == nil {
					continue
				}
				if a.sets[i] == nil {
					a.sets[i] = s
					continue
				}
				dst := a.sets[i]
				for key := range s {
					dst[key] = struct{}{}
				}
			}
		}
	}
}

// fill converts the flat partial into the sparse cell store of the
// published CubeResult (only touched cells materialize, exactly like the
// scalar kernel's lazily created map entries).
func (k *vecKernel) fill(r *CubeResult, pt *vecPartial) {
	for ix := 0; ix < k.size; ix++ {
		n := pt.rows[ix]
		if n == 0 {
			continue
		}
		key := cellKey{cellAny, cellAny, cellAny}
		for i := range k.dims {
			d := &k.dims[i]
			code := (int32(ix) / d.stride) % d.card
			switch code {
			case d.card - 1:
				key[i] = cellAny
			case d.card - 2:
				key[i] = cellOther
			default:
				key[i] = int16(code)
			}
		}
		cell := make([]*accumulator, len(r.cols))
		for ci := range r.cols {
			a := &accumulator{rows: n, min: math.Inf(1), max: math.Inf(-1)}
			if ci == 0 {
				// The star accumulator counts every row as non-NULL.
				a.nonNull = n
			} else {
				ca := &pt.cols[ci]
				a.nonNull = ca.nonNull[ix]
				if ca.sum != nil {
					a.sum = ca.sum[ix]
					a.min = ca.minv[ix]
					a.max = ca.maxv[ix]
				}
				if r.cols[ci].needDistinct {
					switch {
					case ca.bits != nil:
						a.distinct = make(map[uint64]struct{})
						if bs := ca.bits[ix]; bs != nil {
							for w, word := range bs {
								for word != 0 {
									b := bits.TrailingZeros64(word)
									a.distinct[uint64(uint32(w*64+b))] = struct{}{}
									word &= word - 1
								}
							}
						}
					case ca.sets != nil && ca.sets[ix] != nil:
						a.distinct = ca.sets[ix] // partial is discarded; safe to adopt
					default:
						a.distinct = make(map[uint64]struct{})
					}
				}
			}
			cell[ci] = a
		}
		r.cells[key] = cell
	}
}

// computeCubeVectorized runs one vectorized cube pass over the joined view.
// pc.workers bounds how many row-range partials scan concurrently; small
// views always scan single-threaded.
func computeCubeVectorized(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol, pc passConfig) (*CubeResult, error) {
	return computeCubeVectorizedRange(ctx, view, tables, dims, cols, 0, view.NumRows(), pc)
}

// computeCubeVectorizedRange is computeCubeVectorized restricted to joined
// rows [rangeLo, rangeHi) — the full pass with rangeLo=0, rangeHi=NumRows,
// or a delta scan over just the appended rows. Large ranges split into
// row-range partials merged in range order: zone-aligned morsels on the
// shared scheduler when one is installed, a private goroutine pool
// otherwise. Either way the decomposition is fixed up front and partials
// merge in range order, so results do not depend on scheduling.
func computeCubeVectorizedRange(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol, rangeLo, rangeHi int, pc passConfig) (*CubeResult, error) {
	r, err := newCubeResultWithCols(tables, dims, cols)
	if err != nil {
		return nil, err
	}
	size := flatLatticeSize(dims)
	if size < 0 {
		// Defensive: the dispatcher already routed oversized lattices away.
		if pc.stats != nil {
			pc.stats.ScalarPasses.Add(1)
		}
		return computeCubeScalarRange(ctx, view, tables, dims, cols, rangeLo, rangeHi, pc.filter)
	}
	k, err := newVecKernel(view, dims, r, size, pc.stats, pc.zones, pc.filter)
	if err != nil {
		return nil, err
	}
	r.filter = pc.filter

	n := rangeHi - rangeLo
	splittable := pc.workers > 1 && n >= kernelParallelMinRows

	if pc.sched != nil && splittable {
		ranges := morselRanges(k.spans, rangeLo, rangeHi, pc.workers)
		if len(ranges) > 1 {
			partials := make([]*vecPartial, len(ranges))
			err := pc.sched.Run(ctx, pc.stats, len(ranges), pc.workers, func(i int) error {
				pt, err := k.scanRange(ctx, ranges[i].lo, ranges[i].hi)
				if err != nil {
					return err
				}
				partials[i] = pt
				return nil
			})
			if err != nil {
				return nil, err
			}
			root := partials[0]
			for _, pt := range partials[1:] {
				root.merge(pt)
				k.releasePartial(pt)
			}
			if pc.stats != nil {
				pc.stats.PartialsMerged.Add(int64(len(partials) - 1))
			}
			k.fill(r, root)
			r.baseRows = root.baseRows
			k.releasePartial(root)
			return r, nil
		}
	}

	parts := 1
	if splittable && pc.sched == nil {
		parts = pc.workers
		// Each partial should cover at least two blocks, or the merge
		// overhead (size-proportional array walks) beats the scan savings.
		if mx := n / (2 * kernelBlockRows); parts > mx {
			parts = mx
		}
		if parts < 1 {
			parts = 1
		}
	}

	var root *vecPartial
	if parts <= 1 {
		if root, err = k.scanRange(ctx, rangeLo, rangeHi); err != nil {
			return nil, err
		}
	} else {
		partials := make([]*vecPartial, parts)
		errs := make([]error, parts)
		chunk := (n + parts - 1) / parts
		var wg sync.WaitGroup
		for p := 0; p < parts; p++ {
			lo := rangeLo + p*chunk
			hi := lo + chunk
			if hi > rangeHi {
				hi = rangeHi
			}
			wg.Add(1)
			go func(p, lo, hi int) {
				defer wg.Done()
				partials[p], errs[p] = k.scanRange(ctx, lo, hi)
			}(p, lo, hi)
		}
		wg.Wait()
		for _, perr := range errs {
			if perr != nil {
				return nil, perr
			}
		}
		root = partials[0]
		for _, pt := range partials[1:] {
			root.merge(pt)
			k.releasePartial(pt)
		}
		if pc.stats != nil {
			pc.stats.PartialsMerged.Add(int64(parts - 1))
		}
	}

	k.fill(r, root)
	r.baseRows = root.baseRows
	k.releasePartial(root)
	return r, nil
}
