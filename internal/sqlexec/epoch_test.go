package sqlexec

import (
	"math/rand"
	"testing"
)

// TestEpochRebuildOnCompaction covers the structural-epoch path: compacting
// the database reseals every table's blocks (and may re-chunk zone maps), so
// a cached cube cannot delta-advance across it. The next request must take
// exactly one counted full rebuild attributed to the epoch change, produce a
// cube bit-for-bit identical to a from-scratch build over the compacted
// snapshot, and subsequent commits must resume delta scanning as usual.
func TestEpochRebuildOnCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	sc := randomDiffSchema(rng, 600, false, true)
	e := NewEngine(sc.d)
	dims := []DimSpec{{Col: ColumnRef{Table: "f", Column: "s1"}, Literals: []string{"p", "q"}}}
	reqs := []AggRequest{
		{Fn: Count, Col: ColumnRef{}},
		{Fn: Sum, Col: ColumnRef{Table: "f", Column: "n1"}},
		{Fn: CountDistinct, Col: ColumnRef{Table: "f", Column: "s2"}},
	}
	if _, err := e.CubeFor([]string{"f"}, dims, reqs); err != nil {
		t.Fatal(err)
	}

	// A few more sealed blocks so compaction actually merges something.
	for i := 0; i < 3; i++ {
		appendRandomRows(t, sc.d, rng, 40+20*i)
		if _, err := sc.d.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.CubeFor([]string{"f"}, dims, reqs); err != nil {
		t.Fatal(err)
	}

	if _, err := sc.d.Compact(); err != nil {
		t.Fatal(err)
	}

	before := e.Stats.Snapshot()
	got, err := e.CubeFor([]string{"f"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats.Snapshot()
	if n := s["full_rebuilds"] - before["full_rebuilds"]; n != 1 {
		t.Errorf("full rebuilds across compaction = %d, want 1", n)
	}
	if n := s["epoch_rebuilds"] - before["epoch_rebuilds"]; n != 1 {
		t.Errorf("epoch rebuilds across compaction = %d, want 1", n)
	}
	if n := s["delta_scans"] - before["delta_scans"]; n != 0 {
		t.Errorf("delta scans across compaction = %d, want 0 (resealed blocks cannot delta)", n)
	}
	fresh, err := NewEngine(sc.d).CubeFor([]string{"f"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	requireCubesIdentical(t, fresh, got, "post-compaction rebuild")

	// Appends after compaction are ordinary delta advances again — no
	// further epoch rebuilds.
	appendRandomRows(t, sc.d, rng, 50)
	if _, err := sc.d.Commit(); err != nil {
		t.Fatal(err)
	}
	before = e.Stats.Snapshot()
	adv, err := e.CubeFor([]string{"f"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	s = e.Stats.Snapshot()
	if n := s["delta_scans"] - before["delta_scans"]; n != 1 {
		t.Errorf("post-compaction delta scans = %d, want 1", n)
	}
	if n := s["epoch_rebuilds"] - before["epoch_rebuilds"]; n != 0 {
		t.Errorf("post-compaction epoch rebuilds = %d, want 0", n)
	}
	fresh2, err := NewEngine(sc.d).CubeFor([]string{"f"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	requireCubesIdentical(t, fresh2, adv, "post-compaction delta advance")
}
