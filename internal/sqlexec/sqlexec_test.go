package sqlexec

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"aggchecker/internal/db"
)

func nflDB(t *testing.T) *db.Database {
	t.Helper()
	csvData := `name,team,games,category,year,fine
Art Schlichter,IND,indef,gambling,1983,100
Josh Gordon,CLE,indef,substance abuse repeated offense,2014,250
Stanley Wilson,CIN,indef,substance abuse repeated offense,1989,
Dexter Manley,WAS,indef,substance abuse repeated offense,1991,50
Leon Lett,DAL,4,substance abuse,1995,25
Ray Rice,BAL,2,personal conduct,2014,75
Adam Jones,CIN,4,personal conduct,2007,60
`
	tbl, err := db.LoadCSV(strings.NewReader(csvData), "nflsuspensions")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase("nfl")
	d.MustAddTable(tbl)
	return d
}

func ref(col string) ColumnRef { return ColumnRef{Table: "nflsuspensions", Column: col} }

func TestEvaluateCount(t *testing.T) {
	e := NewEngine(nflDB(t))
	q := Query{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}}
	v, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Errorf("Count(games=indef) = %v, want 4 (the paper's running example)", v)
	}
}

func TestEvaluateCountTwoPreds(t *testing.T) {
	e := NewEngine(nflDB(t))
	q := Query{Agg: Count, Preds: []Predicate{
		{Col: ref("games"), Value: "indef"},
		{Col: ref("category"), Value: "substance abuse repeated offense"},
	}}
	v, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Errorf("two-predicate count = %v, want 3", v)
	}
	q2 := Query{Agg: Count, Preds: []Predicate{
		{Col: ref("games"), Value: "indef"},
		{Col: ref("category"), Value: "gambling"},
	}}
	v2, _ := e.Evaluate(q2)
	if v2 != 1 {
		t.Errorf("gambling lifetime bans = %v, want 1", v2)
	}
}

func TestEvaluateNumericAggregates(t *testing.T) {
	e := NewEngine(nflDB(t))
	cases := []struct {
		fn   AggFunc
		col  string
		want float64
	}{
		{Sum, "fine", 560},
		{Avg, "fine", 560.0 / 6},
		{Min, "fine", 25},
		{Max, "fine", 250},
		{Sum, "year", 1983 + 2014 + 1989 + 1991 + 1995 + 2014 + 2007},
	}
	for _, c := range cases {
		v, err := e.Evaluate(Query{Agg: c.fn, AggCol: ref(c.col)})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-c.want) > 1e-9 {
			t.Errorf("%v(%s) = %v, want %v", c.fn, c.col, v, c.want)
		}
	}
}

func TestEvaluateCountDistinct(t *testing.T) {
	e := NewEngine(nflDB(t))
	v, err := e.Evaluate(Query{Agg: CountDistinct, AggCol: ref("team")})
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Errorf("CountDistinct(team) = %v, want 6 (CIN repeats)", v)
	}
	v, err = e.Evaluate(Query{Agg: CountDistinct, AggCol: ref("year"),
		Preds: []Predicate{{Col: ref("games"), Value: "indef"}}})
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Errorf("CountDistinct(year | indef) = %v, want 4", v)
	}
}

func TestEvaluatePercentage(t *testing.T) {
	e := NewEngine(nflDB(t))
	v, err := e.Evaluate(Query{Agg: Percentage, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}})
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 * 4 / 7
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("Percentage(games=indef) = %v, want %v", v, want)
	}
}

func TestEvaluateConditionalProbability(t *testing.T) {
	e := NewEngine(nflDB(t))
	// P(category = gambling | games = indef) = 1/4.
	q := Query{Agg: ConditionalProbability, Preds: []Predicate{
		{Col: ref("games"), Value: "indef"},
		{Col: ref("category"), Value: "gambling"},
	}}
	v, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-25) > 1e-9 {
		t.Errorf("CondProb = %v, want 25", v)
	}
}

func TestEvaluateNullHandling(t *testing.T) {
	e := NewEngine(nflDB(t))
	// Stanley Wilson has a NULL fine; Count(fine) skips it.
	v, err := e.Evaluate(Query{Agg: Count, AggCol: ref("fine")})
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Errorf("Count(fine) = %v, want 6 (one NULL)", v)
	}
	// Aggregates of an empty cell are NaN.
	v, err = e.Evaluate(Query{Agg: Avg, AggCol: ref("fine"),
		Preds: []Predicate{{Col: ref("team"), Value: "ZZZ"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v) {
		t.Errorf("Avg over empty cell = %v, want NaN", v)
	}
}

func TestEvaluateNumericPredicate(t *testing.T) {
	e := NewEngine(nflDB(t))
	v, err := e.Evaluate(Query{Agg: Count, Preds: []Predicate{{Col: ref("year"), Value: "2014"}}})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("Count(year=2014) = %v, want 2", v)
	}
	// Garbage literal on numeric column matches nothing.
	v, _ = e.Evaluate(Query{Agg: Count, Preds: []Predicate{{Col: ref("year"), Value: "abc"}}})
	if v != 0 {
		t.Errorf("Count(year=abc) = %v, want 0", v)
	}
}

func TestQueryKeyCanonical(t *testing.T) {
	a := Query{Agg: Count, Preds: []Predicate{
		{Col: ref("games"), Value: "indef"},
		{Col: ref("category"), Value: "gambling"},
	}}
	b := Query{Agg: Count, Preds: []Predicate{
		{Col: ref("category"), Value: "gambling"},
		{Col: ref("games"), Value: "indef"},
	}}
	if a.Key() != b.Key() {
		t.Errorf("predicate order changed Key: %q vs %q", a.Key(), b.Key())
	}
	// ConditionalProbability keys are sensitive to the condition.
	c := Query{Agg: ConditionalProbability, Preds: a.Preds}
	d := Query{Agg: ConditionalProbability, Preds: b.Preds}
	if c.Key() == d.Key() {
		t.Error("conditional probability should distinguish the condition predicate")
	}
}

func TestQuerySQLAndDescribe(t *testing.T) {
	q := Query{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}}
	sql := q.SQL("nflsuspensions")
	if !strings.Contains(sql, "SELECT Count(*)") || !strings.Contains(sql, "games = 'indef'") {
		t.Errorf("SQL = %q", sql)
	}
	desc := q.Describe()
	if !strings.Contains(desc, "number of rows") || !strings.Contains(desc, "games is indef") {
		t.Errorf("Describe = %q", desc)
	}
}

func buildNFLDims() []DimSpec {
	return []DimSpec{
		{Col: ref("games"), Literals: []string{"indef", "4"}},
		{Col: ref("category"), Literals: []string{"gambling", "substance abuse repeated offense"}},
	}
}

func TestCubeMatchesDirectEvaluation(t *testing.T) {
	e := NewEngine(nflDB(t))
	dims := buildNFLDims()
	reqs := []AggRequest{
		{Fn: Count, Col: ColumnRef{}},
		{Fn: Sum, Col: ref("fine")},
		{Fn: Avg, Col: ref("fine")},
		{Fn: CountDistinct, Col: ref("team")},
		{Fn: Percentage, Col: ColumnRef{}},
	}
	cube, err := e.CubeFor([]string{"nflsuspensions"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Every query expressible in the cube must agree with direct evaluation.
	var queries []Query
	predSets := [][]Predicate{
		nil,
		{{Col: ref("games"), Value: "indef"}},
		{{Col: ref("games"), Value: "4"}},
		{{Col: ref("category"), Value: "gambling"}},
		{{Col: ref("games"), Value: "indef"}, {Col: ref("category"), Value: "gambling"}},
		{{Col: ref("games"), Value: "indef"}, {Col: ref("category"), Value: "substance abuse repeated offense"}},
	}
	for _, ps := range predSets {
		queries = append(queries,
			Query{Agg: Count, Preds: ps},
			Query{Agg: Sum, AggCol: ref("fine"), Preds: ps},
			Query{Agg: Avg, AggCol: ref("fine"), Preds: ps},
			Query{Agg: CountDistinct, AggCol: ref("team"), Preds: ps},
			Query{Agg: Percentage, Preds: ps},
		)
		if len(ps) == 2 {
			queries = append(queries, Query{Agg: ConditionalProbability, Preds: ps})
		}
	}
	for _, q := range queries {
		cv, ok := cube.Value(q)
		if !ok {
			t.Errorf("cube cannot answer %s", q.Key())
			continue
		}
		dv, err := e.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if !eqNaN(cv, dv) {
			t.Errorf("%s: cube=%v direct=%v", q.Key(), cv, dv)
		}
	}
}

func eqNaN(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) < 1e-9
}

func TestCubeRandomizedAgainstDirect(t *testing.T) {
	// Property: on a random table, every query covered by a random cube
	// agrees with direct evaluation.
	rng := rand.New(rand.NewSource(99))
	colA := db.NewStringColumn("a")
	colB := db.NewStringColumn("b")
	colX := db.NewFloatColumn("x")
	avals := []string{"p", "q", "r", "s"}
	bvals := []string{"u", "v", "w"}
	for i := 0; i < 500; i++ {
		if rng.Intn(10) == 0 {
			colA.AppendString("")
		} else {
			colA.AppendString(avals[rng.Intn(len(avals))])
		}
		colB.AppendString(bvals[rng.Intn(len(bvals))])
		if rng.Intn(15) == 0 {
			colX.AppendFloat(math.NaN())
		} else {
			colX.AppendFloat(float64(rng.Intn(100)))
		}
	}
	tbl := db.MustNewTable("t", colA, colB, colX)
	d := db.NewDatabase("rand")
	d.MustAddTable(tbl)
	e := NewEngine(d)
	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	dims := []DimSpec{
		{Col: cr("a"), Literals: []string{"p", "q"}},
		{Col: cr("b"), Literals: []string{"u", "v", "w"}},
	}
	reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}, {Fn: Sum, Col: cr("x")},
		{Fn: CountDistinct, Col: cr("x")}, {Fn: Min, Col: cr("x")}, {Fn: Max, Col: cr("x")}}
	cube, err := e.CubeFor([]string{"t"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	fns := []AggFunc{Count, Sum, Avg, Min, Max, CountDistinct, Percentage}
	for i := 0; i < 300; i++ {
		var preds []Predicate
		if rng.Intn(2) == 0 {
			preds = append(preds, Predicate{Col: cr("a"), Value: []string{"p", "q"}[rng.Intn(2)]})
		}
		if rng.Intn(2) == 0 {
			preds = append(preds, Predicate{Col: cr("b"), Value: bvals[rng.Intn(3)]})
		}
		fn := fns[rng.Intn(len(fns))]
		q := Query{Agg: fn, Preds: preds}
		if fn.NeedsNumericColumn() || fn == CountDistinct {
			q.AggCol = cr("x")
		}
		cv, ok := cube.Value(q)
		if !ok {
			t.Fatalf("cube cannot answer %s", q.Key())
		}
		dv, err := e.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if !eqNaN(cv, dv) {
			t.Fatalf("query %s: cube=%v direct=%v", q.Key(), cv, dv)
		}
	}
}

func TestCubeCacheReuse(t *testing.T) {
	e := NewEngine(nflDB(t))
	dims := buildNFLDims()
	reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}}
	if _, err := e.CubeFor([]string{"nflsuspensions"}, dims, reqs); err != nil {
		t.Fatal(err)
	}
	misses := e.Stats.CacheMisses.Load()
	if _, err := e.CubeFor([]string{"nflsuspensions"}, dims, reqs); err != nil {
		t.Fatal(err)
	}
	if e.Stats.CacheMisses.Load() != misses {
		t.Error("second identical cube request should hit the cache")
	}
	if e.Stats.CacheHits.Load() == 0 {
		t.Error("cache hit not recorded")
	}
}

func TestCubeCacheExtension(t *testing.T) {
	e := NewEngine(nflDB(t))
	dims := buildNFLDims()
	if _, err := e.CubeFor([]string{"nflsuspensions"}, dims,
		[]AggRequest{{Fn: Count, Col: ColumnRef{}}}); err != nil {
		t.Fatal(err)
	}
	passes := e.Stats.CubePasses.Load()
	// Requesting a new aggregation column extends the cached cube in one
	// additional pass, after which the merged cube answers both.
	cube, err := e.CubeFor([]string{"nflsuspensions"}, dims,
		[]AggRequest{{Fn: Sum, Col: ref("fine")}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats.CubePasses.Load() != passes+1 {
		t.Errorf("extension should cost exactly one pass")
	}
	q := Query{Agg: Sum, AggCol: ref("fine"), Preds: []Predicate{{Col: ref("games"), Value: "indef"}}}
	cv, ok := cube.Value(q)
	if !ok {
		t.Fatal("merged cube cannot answer extended query")
	}
	dv, _ := e.Evaluate(q)
	if !eqNaN(cv, dv) {
		t.Errorf("merged cube: %v want %v", cv, dv)
	}
	// The original count queries must survive the merge.
	q2 := Query{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}}
	cv2, ok := cube.Value(q2)
	if !ok || cv2 != 4 {
		t.Errorf("count after merge = %v ok=%v, want 4", cv2, ok)
	}
}

func TestCubeCachingDisabled(t *testing.T) {
	e := NewEngine(nflDB(t))
	e.Tune(WithCaching(false))
	dims := buildNFLDims()
	reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}}
	for i := 0; i < 3; i++ {
		if _, err := e.CubeFor([]string{"nflsuspensions"}, dims, reqs); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats.CubePasses.Load(); got != 3 {
		t.Errorf("with caching off, 3 requests should cost 3 passes, got %d", got)
	}
}

func TestCubeDimensionLimit(t *testing.T) {
	e := NewEngine(nflDB(t))
	dims := []DimSpec{
		{Col: ref("games"), Literals: []string{"indef"}},
		{Col: ref("category"), Literals: []string{"gambling"}},
		{Col: ref("team"), Literals: []string{"CIN"}},
		{Col: ref("name"), Literals: []string{"Ray Rice"}},
	}
	if _, err := e.CubeFor([]string{"nflsuspensions"}, dims, nil); err == nil {
		t.Error("four cube dimensions should be rejected")
	}
}

func TestCubeUncoveredQuery(t *testing.T) {
	e := NewEngine(nflDB(t))
	cube, err := e.CubeFor([]string{"nflsuspensions"}, buildNFLDims(), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Agg: Count, Preds: []Predicate{{Col: ref("team"), Value: "CIN"}}}
	if _, ok := cube.Value(q); ok {
		t.Error("cube should not answer a predicate outside its dimensions")
	}
	if !cube.CanAnswer(Query{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}}) {
		t.Error("cube should answer covered query")
	}
	// Literal outside the InOrDefault set is not answerable either.
	q2 := Query{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "2"}}}
	if cube.CanAnswer(q2) {
		t.Error("literal outside the relevant set must not be answerable")
	}
}

func TestEngineStats(t *testing.T) {
	e := NewEngine(nflDB(t))
	if _, err := e.Evaluate(Query{Agg: Count}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats.Snapshot()
	if s["direct_queries"] != 1 || s["rows_scanned"] != 7 {
		t.Errorf("stats = %v", s)
	}
}
