package model

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"aggchecker/internal/sqlexec"
)

// cancellingEval cancels the run from inside the first claim batch, the
// way a caller-side cancellation lands while the evaluator is mid-flight.
type cancellingEval struct {
	inner  naiveEval
	cancel context.CancelFunc
}

func (c cancellingEval) EvaluateBatch(ctx context.Context, qs []sqlexec.Query) []float64 {
	c.cancel()
	out := make([]float64, len(qs))
	for i := range out {
		out[i] = math.NaN()
	}
	return out
}

// TestRunCancelledMidBatch asserts the EM loop notices cancellation right
// after a claim batch and returns ctx.Err() instead of a partial result.
func TestRunCancelledMidBatch(t *testing.T) {
	cat, doc, scores, eng := nflSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ev := cancellingEval{inner: naiveEval{eng}, cancel: cancel}

	start := time.Now()
	res, err := Run(ctx, cat, doc, scores, ev, testConfig(), nil)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancelled Run took %s", elapsed)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	cat, doc, scores, eng := nflSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, cat, doc, scores, naiveEval{eng}, testConfig(), nil)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// TestRunObserverSeesEveryIteration checks the observer contract: one
// update per EM iteration plus the final pass, claims always index-aligned
// with the document, and the final update flagged Final with claim results
// equal to the returned ones.
func TestRunObserverSeesEveryIteration(t *testing.T) {
	cat, doc, scores, eng := nflSetup(t)
	cfg := testConfig()
	cfg.MaxEMIters = 3
	cfg.ConvergeEps = 0 // never break early

	var updates []IterationUpdate
	res, err := Run(context.Background(), cat, doc, scores, naiveEval{eng}, cfg, func(u IterationUpdate) {
		updates = append(updates, u)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != cfg.MaxEMIters+1 {
		t.Fatalf("observer updates = %d, want %d (iterations + final)", len(updates), cfg.MaxEMIters+1)
	}
	for i, u := range updates {
		if len(u.Claims) != len(doc.Claims) {
			t.Fatalf("update %d: %d claims, want %d", i, len(u.Claims), len(doc.Claims))
		}
		wantFinal := i == len(updates)-1
		if u.Final != wantFinal {
			t.Errorf("update %d: Final = %v, want %v", i, u.Final, wantFinal)
		}
	}
	final := updates[len(updates)-1]
	for i := range final.Claims {
		if final.Claims[i].Erroneous != res.Claims[i].Erroneous ||
			final.Claims[i].PCorrect != res.Claims[i].PCorrect {
			t.Errorf("final update claim %d differs from returned result", i)
		}
	}
}
