package model

import (
	"context"
	"math"
	"strings"
	"testing"

	"aggchecker/internal/db"
	"aggchecker/internal/document"
	"aggchecker/internal/fragments"
	"aggchecker/internal/keywords"
	"aggchecker/internal/sqlexec"
)

// naiveEval satisfies Evaluator by evaluating each query directly.
type naiveEval struct{ e *sqlexec.Engine }

func (n naiveEval) EvaluateBatch(ctx context.Context, qs []sqlexec.Query) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		v, err := n.e.EvaluateContext(ctx, q)
		if err != nil {
			v = math.NaN()
		}
		out[i] = v
	}
	return out
}

// mustRun is Run with a background context, no observer, and fatal errors.
func mustRun(t *testing.T, cat *fragments.Catalog, doc *document.Document, scores []keywords.Scores, ev Evaluator, cfg Config) *Result {
	t.Helper()
	res, err := Run(context.Background(), cat, doc, scores, ev, cfg, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestMatchesRounding(t *testing.T) {
	cases := []struct {
		result, claimed float64
		want            bool
	}{
		{4, 4, true},
		{4.2, 4, true},   // rounds to 4 at 1 significant digit
		{14, 13, false},  // the paper's self-taught example: 13 was wrong
		{13.6, 14, true}, // and 14 is right
		{40.8, 41, true}, // the recline-seat percentage
		{63, 64, false},  // the donation-recipients example
		{63, 63, true},
		{1489234, 1.5e6, true}, // "1.5 million"
		{0, 0, true},
		{0.04, 0, false},
		{-3.6, -4, true},
		{math.NaN(), 4, false},
		{math.Inf(1), 4, false},
		{123456, 120000, true}, // 2 significant digits
		{125456, 130000, true}, // rounds up
		{125456, 125000, true}, // 3 sig digits (125456 -> 125000)
		{1999, 2000, true},
		{2106, 2000, true}, // 1 significant digit rounds 2106 to 2000
	}
	for _, c := range cases {
		if got := Matches(c.result, c.claimed); got != c.want {
			t.Errorf("Matches(%v, %v) = %v, want %v", c.result, c.claimed, got, c.want)
		}
	}
}

func TestMatchesAnySigDigits(t *testing.T) {
	// 2106 rounds to 2000 at 1 significant digit, so claim 2000 is correct.
	if !Matches(2106, 2000) {
		t.Error("2106 should match claim 2000 via 1-significant-digit rounding")
	}
	if Matches(2606, 2000) {
		t.Error("2606 rounds to 3000, should not match 2000")
	}
}

func TestRoundSig(t *testing.T) {
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{13.6, 2, 14},
		{13.6, 3, 13.6},
		{40.8, 2, 41},
		{0.0456, 2, 0.046},
		{-13.6, 2, -14},
		{125456, 2, 130000},
	}
	for _, c := range cases {
		if got := RoundSig(c.x, c.k); math.Abs(got-c.want) > math.Abs(c.want)*1e-9 {
			t.Errorf("RoundSig(%v, %d) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
}

const nflCSV = `name,team,games,category,year
Art Schlichter,IND,indef,gambling,1983
Josh Gordon,CLE,indef,substance abuse repeated offense,2014
Stanley Wilson,CIN,indef,substance abuse repeated offense,1989
Dexter Manley,WAS,indef,substance abuse repeated offense,1991
Leon Lett,DAL,4,substance abuse,1995
Ray Rice,BAL,2,personal conduct,2014
Adam Jones,CIN,4,personal conduct,2007
`

const nflHTML = `<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans and suspensions</h2>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>`

func nflSetup(t *testing.T) (*fragments.Catalog, *document.Document, []keywords.Scores, *sqlexec.Engine) {
	t.Helper()
	tbl, err := db.LoadCSV(strings.NewReader(nflCSV), "nflsuspensions")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase("nfl")
	d.MustAddTable(tbl)
	cat := fragments.BuildCatalog(d, fragments.DefaultOptions())
	doc := document.ParseHTML(nflHTML)
	if len(doc.Claims) != 3 {
		t.Fatalf("claims = %d, want 3", len(doc.Claims))
	}
	scores := keywords.MatchAll(cat, doc, keywords.DefaultContext(), 20)
	return cat, doc, scores, sqlexec.NewEngine(d)
}

func nflGroundTruth() []sqlexec.Query {
	pred := func(col, val string) sqlexec.Predicate {
		return sqlexec.Predicate{Col: sqlexec.ColumnRef{Table: "nflsuspensions", Column: col}, Value: val}
	}
	return []sqlexec.Query{
		{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{pred("games", "indef")}},
		{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{pred("games", "indef"), pred("category", "substance abuse repeated offense")}},
		{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{pred("games", "indef"), pred("category", "gambling")}},
	}
}

func rankOf(res ClaimResult, truth sqlexec.Query) int {
	key := truth.Key()
	for i, rq := range res.Ranked {
		if rq.Query.Key() == key {
			return i
		}
	}
	return -1
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.EvalBudget = 600
	cfg.MaxEMIters = 4
	return cfg
}

func TestEMResolvesNFLExample(t *testing.T) {
	cat, doc, scores, eng := nflSetup(t)
	res := mustRun(t, cat, doc, scores, naiveEval{eng}, testConfig())
	truth := nflGroundTruth()
	for i, cr := range res.Claims {
		r := rankOf(cr, truth[i])
		if r < 0 || r >= 5 {
			best := "none"
			if cr.Best() != nil {
				best = cr.Best().Query.Key()
			}
			t.Errorf("claim %d (%v): ground truth rank = %d, want top-5; best = %s",
				i, cr.Claim.Claimed.Value, r, best)
		}
		if cr.Erroneous {
			t.Errorf("claim %d should verify as correct", i)
		}
	}
}

func TestEMDetectsErroneousClaim(t *testing.T) {
	// Flip the first claim to a wrong value ("five" lifetime bans).
	cat, _, _, eng := nflSetup(t)
	doc := document.ParseHTML(strings.Replace(nflHTML, "four", "five", 1))
	scores := keywords.MatchAll(cat, doc, keywords.DefaultContext(), 20)
	res := mustRun(t, cat, doc, scores, naiveEval{eng}, testConfig())
	if !res.Claims[0].Erroneous {
		best := res.Claims[0].Best()
		t.Errorf("claim 'five' should be marked erroneous (best=%v result=%v)",
			best.Query.Key(), best.Result)
	}
	// The other two claims remain correct.
	if res.Claims[1].Erroneous || res.Claims[2].Erroneous {
		t.Error("correct claims were marked erroneous")
	}
}

func TestEMLearnsPriors(t *testing.T) {
	cat, doc, scores, eng := nflSetup(t)
	res := mustRun(t, cat, doc, scores, naiveEval{eng}, testConfig())
	// All ground-truth queries are counts restricted on games: the learned
	// priors must put the largest function mass on Count and a high
	// restriction probability on games (Table 2 of the paper). With 3
	// claims and Dirichlet alpha 0.5, the ceiling is (3+0.5)/(3+4) = 0.5.
	for i, v := range res.Priors.Fn {
		if i != int(sqlexec.Count) && v > res.Priors.Fn[int(sqlexec.Count)] {
			t.Errorf("function %d prior %v exceeds Count prior %v", i, v, res.Priors.Fn[int(sqlexec.Count)])
		}
	}
	if res.Priors.Fn[int(sqlexec.Count)] < 0.3 {
		t.Errorf("Count prior = %v, want > 0.3", res.Priors.Fn[int(sqlexec.Count)])
	}
	gi := cat.PredColumnIndex(sqlexec.ColumnRef{Table: "nflsuspensions", Column: "games"})
	ti := cat.PredColumnIndex(sqlexec.ColumnRef{Table: "nflsuspensions", Column: "team"})
	if res.Priors.Restrict[gi] <= res.Priors.Restrict[ti] {
		t.Errorf("restrict(games)=%v should exceed restrict(team)=%v",
			res.Priors.Restrict[gi], res.Priors.Restrict[ti])
	}
}

func TestEvalResultsAblationDegrades(t *testing.T) {
	cat, doc, scores, eng := nflSetup(t)
	full := mustRun(t, cat, doc, scores, naiveEval{eng}, testConfig())
	cfgNoEval := testConfig()
	cfgNoEval.UseEvalResults = false
	cfgNoEval.UsePriors = false
	bare := mustRun(t, cat, doc, scores, naiveEval{eng}, cfgNoEval)
	truth := nflGroundTruth()
	fullHits, bareHits := 0, 0
	for i := range truth {
		if r := rankOf(full.Claims[i], truth[i]); r == 0 {
			fullHits++
		}
		if r := rankOf(bare.Claims[i], truth[i]); r == 0 {
			bareHits++
		}
	}
	if fullHits < bareHits {
		t.Errorf("full model top-1 hits (%d) should be >= keyword-only hits (%d)", fullHits, bareHits)
	}
	// The paper's top-1 coverage is 58.4%; on this deliberately ambiguous
	// 3-claim example at least one claim must resolve exactly at top-1
	// (the others lose narrowly to result-equivalent translations).
	if fullHits < 1 {
		t.Errorf("full model should resolve at least 1/3 claims at top-1, got %d", fullHits)
	}
}

func TestSpaceEnumerationProperties(t *testing.T) {
	cat, doc, scores, _ := nflSetup(t)
	cfg := testConfig()
	pool := BuildPool(cat, scores, cfg)
	space := BuildSpace(cat, doc.Claims[0], scores[0], UniformPriors(cat), pool, cfg)
	cands := space.TopCandidates(300, cfg.MaxPreds)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	seen := map[string]bool{}
	prev := math.Inf(1)
	for _, c := range cands {
		if c.Prob > prev+1e-12 {
			t.Fatalf("candidates not in descending probability order: %v after %v", c.Prob, prev)
		}
		prev = c.Prob
		q := space.Query(c)
		if len(q.Preds) > cfg.MaxPreds {
			t.Fatalf("candidate has %d predicates, max %d", len(q.Preds), cfg.MaxPreds)
		}
		key := q.Key()
		if seen[key] {
			t.Fatalf("duplicate candidate %s", key)
		}
		seen[key] = true
	}
}

func TestSpaceProbabilitiesSumToOne(t *testing.T) {
	cat, doc, scores, _ := nflSetup(t)
	cfg := testConfig()
	cfg.ScopeCols = 2
	cfg.LitsPerColumn = 3
	pool := BuildPool(cat, scores, cfg)
	space := BuildSpace(cat, doc.Claims[0], scores[0], UniformPriors(cat), pool, cfg)
	// Enumerate the whole space (small limits) without the predicate cap:
	// base probabilities must sum to 1.
	all := space.TopCandidates(1000000, len(space.cols))
	var total float64
	for _, c := range all {
		total += c.Prob
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("base probability mass = %v, want 1", total)
	}
}

func TestPriorsMaximization(t *testing.T) {
	cat, _, _, _ := nflSetup(t)
	stats := newPriorStats(cat)
	q := nflGroundTruth()[0]
	for i := 0; i < 10; i++ {
		stats.addQuery(cat, q)
	}
	p := stats.maximize(0.5)
	// (10+0.5)/(10+8·0.5) = 0.75 with Dirichlet smoothing over 8 functions.
	if p.Fn[int(sqlexec.Count)] < 0.7 {
		t.Errorf("Count prior after 10 unanimous counts = %v", p.Fn[int(sqlexec.Count)])
	}
	gi := cat.PredColumnIndex(sqlexec.ColumnRef{Table: "nflsuspensions", Column: "games"})
	if p.Restrict[gi] < 0.9 {
		t.Errorf("games restriction prior = %v, want > 0.9", p.Restrict[gi])
	}
	var sum float64
	for _, v := range p.Fn {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("function priors sum to %v", sum)
	}
}

func TestUniformPriors(t *testing.T) {
	cat, _, _, _ := nflSetup(t)
	p := UniformPriors(cat)
	var sum float64
	for _, v := range p.Fn {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("uniform fn priors sum to %v", sum)
	}
	for _, r := range p.Restrict {
		if r <= 0 || r > 0.5 {
			t.Errorf("restriction prior %v outside (0, 0.5]", r)
		}
	}
	q := p.Clone()
	q.Fn[0] = 0.9
	if p.Fn[0] == 0.9 {
		t.Error("Clone did not deep-copy")
	}
	if p.MaxDelta(q) == 0 {
		t.Error("MaxDelta should detect the modified component")
	}
}

func TestSoftEMAlsoResolves(t *testing.T) {
	cat, doc, scores, eng := nflSetup(t)
	cfg := testConfig()
	cfg.SoftEM = true
	res := mustRun(t, cat, doc, scores, naiveEval{eng}, cfg)
	truth := nflGroundTruth()
	hits := 0
	for i := range truth {
		if r := rankOf(res.Claims[i], truth[i]); r >= 0 && r < 5 {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("soft EM resolved only %d/3 claims in top-5", hits)
	}
}

func TestPCorrectRange(t *testing.T) {
	cat, doc, scores, eng := nflSetup(t)
	res := mustRun(t, cat, doc, scores, naiveEval{eng}, testConfig())
	for i, cr := range res.Claims {
		if cr.PCorrect < 0 || cr.PCorrect > 1 {
			t.Errorf("claim %d PCorrect = %v out of range", i, cr.PCorrect)
		}
		var sum float64
		for _, rq := range cr.Ranked {
			if rq.Prob < 0 || rq.Prob > 1.0000001 {
				t.Errorf("claim %d ranked prob %v out of range", i, rq.Prob)
			}
			sum += rq.Prob
		}
		if sum > 1.0000001 {
			t.Errorf("claim %d ranked probs sum to %v > 1", i, sum)
		}
	}
}
