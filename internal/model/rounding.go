package model

import "math"

// maxSigDigits bounds the rounding functions considered admissible.
const maxSigDigits = 12

// Matches implements Definition 1's correctness test: a claim with value
// claimed is satisfied by query result r when some admissible rounding of r
// equals claimed. Rounding to any number of significant digits is
// admissible, so the test is ∃ k ∈ 1…12: round(r, k significant digits) =
// claimed. Examples from the paper: result 4.0 matches claim "four"; result
// 14 does not match claim "13" (no significant-digit rounding of 14 yields
// 13); result 40.8 matches claim "41".
func Matches(result, claimed float64) bool {
	if math.IsNaN(result) || math.IsInf(result, 0) {
		return false
	}
	if result == claimed {
		return true
	}
	if claimed == 0 {
		// Significant-digit rounding never maps a non-zero value to zero.
		return result == 0
	}
	for k := 1; k <= maxSigDigits; k++ {
		if approxEqual(RoundSig(result, k), claimed) {
			return true
		}
	}
	return false
}

// RoundSig rounds x to k significant digits (k >= 1).
func RoundSig(x float64, k int) float64 {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	mag := math.Floor(math.Log10(math.Abs(x)))
	scale := math.Pow(10, float64(k-1)-mag)
	return math.Round(x*scale) / scale
}

// approxEqual compares with a relative tolerance to absorb float error from
// the scale/unscale round trip.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	norm := math.Max(math.Abs(a), math.Abs(b))
	return diff <= norm*1e-9
}
