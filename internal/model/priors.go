package model

import (
	"math"

	"aggchecker/internal/fragments"
	"aggchecker/internal/sqlexec"
)

// Priors are the document-theme parameters Θ of §5.2: a distribution over
// aggregation functions, a distribution over aggregation-column fragments,
// and an independent Bernoulli restriction probability per predicate
// column.
type Priors struct {
	// Fn[f] is the prior of aggregation function f; sums to 1.
	Fn []float64
	// Col[i] is the prior of the i-th column fragment of the catalog
	// (index 0 = "*"); sums to 1.
	Col []float64
	// Restrict[j] is the probability that a claim query places an equality
	// predicate on the j-th predicate column of the catalog.
	Restrict []float64
}

// initialFnPrior seeds the aggregation-function prior before the first EM
// iteration. The paper initializes Θ uniformly, but 30% of claims state no
// function at all (§7.3) and a uniform start leaves Count and CountDistinct
// exactly tied for them — on small data sets CountDistinct then wins through
// accidental result matches. English claims overwhelmingly default to plain
// counts, so we seed a mild linguistic preference (EM overwrites Θ from the
// first maximization step either way); DESIGN.md records the deviation.
var initialFnPrior = map[sqlexec.AggFunc]float64{
	sqlexec.Count:                  0.40,
	sqlexec.Sum:                    0.11,
	sqlexec.Avg:                    0.11,
	sqlexec.Percentage:             0.11,
	sqlexec.Max:                    0.09,
	sqlexec.Min:                    0.07,
	sqlexec.CountDistinct:          0.04,
	sqlexec.ConditionalProbability: 0.07,
}

// UniformPriors initializes Θ before the first EM iteration (Algorithm 3
// line 6): the seeded function prior above, uniform aggregation-column
// priors, and restriction probabilities at the implied neutral rate — the
// expected predicates per claim (one, per Figure 9c) spread over the
// predicate columns, clamped to [0.05, 0.5].
func UniformPriors(cat *fragments.Catalog) *Priors {
	p := &Priors{
		Fn:       make([]float64, len(cat.Funcs)),
		Col:      make([]float64, len(cat.Columns)),
		Restrict: make([]float64, len(cat.PredColumns)),
	}
	for i := range p.Fn {
		p.Fn[i] = initialFnPrior[sqlexec.AggFunc(i)]
	}
	for i := range p.Col {
		p.Col[i] = 1.0 / float64(len(p.Col))
	}
	r := 0.25
	if n := len(p.Restrict); n > 0 {
		r = math.Min(0.5, math.Max(0.05, 1.0/float64(n)))
	}
	for i := range p.Restrict {
		p.Restrict[i] = r
	}
	return p
}

// Clone deep-copies the priors.
func (p *Priors) Clone() *Priors {
	q := &Priors{
		Fn:       append([]float64(nil), p.Fn...),
		Col:      append([]float64(nil), p.Col...),
		Restrict: append([]float64(nil), p.Restrict...),
	}
	return q
}

// MaxDelta returns the largest absolute component difference between two
// prior vectors (the EM convergence criterion).
func (p *Priors) MaxDelta(q *Priors) float64 {
	d := 0.0
	for i := range p.Fn {
		d = math.Max(d, math.Abs(p.Fn[i]-q.Fn[i]))
	}
	for i := range p.Col {
		d = math.Max(d, math.Abs(p.Col[i]-q.Col[i]))
	}
	for i := range p.Restrict {
		d = math.Max(d, math.Abs(p.Restrict[i]-q.Restrict[i]))
	}
	return d
}

// priorStats accumulates the sufficient statistics of the maximization step
// (expected or maximum-likelihood usage counts per query characteristic).
type priorStats struct {
	fn       []float64
	col      []float64
	restrict []float64
	claims   float64
}

func newPriorStats(cat *fragments.Catalog) *priorStats {
	return &priorStats{
		fn:       make([]float64, len(cat.Funcs)),
		col:      make([]float64, len(cat.Columns)),
		restrict: make([]float64, len(cat.PredColumns)),
	}
}

// addQuery registers one maximum-likelihood query (hard EM).
func (s *priorStats) addQuery(cat *fragments.Catalog, q sqlexec.Query) {
	s.claims++
	s.fn[int(q.Agg)]++
	s.col[colFragIndex(cat, q.AggCol)]++
	for _, pred := range q.Preds {
		if j := cat.PredColumnIndex(pred.Col); j >= 0 {
			s.restrict[j]++
		}
	}
}

// colFragIndex maps an aggregation column reference to its position within
// cat.Columns (0 is the star fragment).
func colFragIndex(cat *fragments.Catalog, col sqlexec.ColumnRef) int {
	for i, f := range cat.Columns {
		if f.Col == col {
			return i
		}
	}
	return 0
}

// maximize produces the updated priors (Algorithm 3 line 17) with Dirichlet
// smoothing alpha. Function smoothing uses the linguistic seed prior as the
// Dirichlet mean so that, on documents with few claims, ties between
// implicit functions keep resolving toward the plain count reading instead
// of locking onto an early accidental match.
func (s *priorStats) maximize(alpha float64) *Priors {
	fnAlpha := make([]float64, len(s.fn))
	for i := range fnAlpha {
		fnAlpha[i] = alpha * float64(len(s.fn)) * initialFnPrior[sqlexec.AggFunc(i)]
	}
	p := &Priors{
		Fn:       normalizeWithVec(s.fn, fnAlpha),
		Col:      normalizeWith(s.col, alpha),
		Restrict: make([]float64, len(s.restrict)),
	}
	n := s.claims
	for i, c := range s.restrict {
		p.Restrict[i] = (c + alpha) / (n + 2*alpha)
	}
	return p
}

func normalizeWithVec(counts, alphas []float64) []float64 {
	out := make([]float64, len(counts))
	total := 0.0
	for i, c := range counts {
		total += c + alphas[i]
	}
	if total == 0 {
		for i := range out {
			out[i] = 1.0 / float64(len(out))
		}
		return out
	}
	for i, c := range counts {
		out[i] = (c + alphas[i]) / total
	}
	return out
}

func normalizeWith(counts []float64, alpha float64) []float64 {
	out := make([]float64, len(counts))
	total := 0.0
	for _, c := range counts {
		total += c + alpha
	}
	if total == 0 {
		for i := range out {
			out[i] = 1.0 / float64(len(out))
		}
		return out
	}
	for i, c := range counts {
		out[i] = (c + alpha) / total
	}
	return out
}
