package model

import (
	"container/heap"
	"sort"

	"aggchecker/internal/document"
	"aggchecker/internal/fragments"
	"aggchecker/internal/keywords"
	"aggchecker/internal/sqlexec"
)

// fcOption is a valid (aggregation function, aggregation column) pair.
type fcOption struct {
	fnIdx  int // == int(sqlexec.AggFunc)
	colIdx int // index into catalog.Columns
	weight float64
}

// litOption is one choice for a scope column: a literal or "no restriction".
type litOption struct {
	fragID int // -1 for no restriction
	value  string
	weight float64
}

// scopeColumn is one predicate column within a claim's evaluation scope.
type scopeColumn struct {
	predIdx int // index into catalog.PredColumns
	ref     sqlexec.ColumnRef
	options []litOption // sorted descending by weight; exactly one none
	noneIdx int         // position of the none option
}

// Space is the candidate query space of one claim: the cross product of FC
// pairs and per-column predicate choices, with normalized per-category
// weights so the base distribution over the space sums to one.
type Space struct {
	cat   *fragments.Catalog
	claim *document.Claim
	fcs   []fcOption
	cols  []scopeColumn
}

// LiteralPool carries the document-wide literals with non-zero marginal
// probability per predicate column (§6.3): the union over claims of
// retrieved predicate fragments. It lets one claim's candidates include
// literals surfaced only by other claims — the cross-claim transfer of
// Example 5.
type LiteralPool struct {
	byColumn map[int][]poolLit // predIdx -> literals, sorted by score desc
}

type poolLit struct {
	fragID int
	value  string
	score  float64
}

// sumScores adds a score map's values in sorted-key order. Plain map
// iteration would sum floats in a run-dependent order and leak ULP-level
// nondeterminism into every normalized weight downstream — which breaks
// the bit-for-bit sharded-vs-unsharded report differential.
func sumScores(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// BuildPool aggregates retrieved predicate fragments across all claims.
func BuildPool(cat *fragments.Catalog, allScores []keywords.Scores, cfg Config) *LiteralPool {
	acc := make(map[int]float64) // fragID -> summed normalized score
	for _, s := range allScores {
		total := sumScores(s.Preds)
		if total == 0 {
			continue
		}
		for id, v := range s.Preds {
			acc[id] += v / total
		}
	}
	pool := &LiteralPool{byColumn: make(map[int][]poolLit)}
	for id, score := range acc {
		f := cat.Fragment(id)
		j := cat.PredColumnIndex(f.Col)
		if j < 0 {
			continue
		}
		pool.byColumn[j] = append(pool.byColumn[j], poolLit{fragID: id, value: f.Value, score: score})
	}
	for j := range pool.byColumn {
		lits := pool.byColumn[j]
		sort.Slice(lits, func(a, b int) bool {
			if lits[a].score != lits[b].score {
				return lits[a].score > lits[b].score
			}
			return lits[a].fragID < lits[b].fragID
		})
		if cfg.LitsPerColumn > 0 && len(lits) > cfg.LitsPerColumn {
			lits = lits[:cfg.LitsPerColumn]
		}
		pool.byColumn[j] = lits
	}
	return pool
}

// Literals exports the pooled literals per predicate column, keyed by the
// column reference string; the cube evaluator uses this as the stable
// document-wide InOrDefault literal set (§6.3).
func (p *LiteralPool) Literals(cat *fragments.Catalog) map[string][]string {
	out := make(map[string][]string, len(p.byColumn))
	for j, lits := range p.byColumn {
		key := cat.PredColumns[j].String()
		vals := make([]string, len(lits))
		for i, l := range lits {
			vals[i] = l.value
		}
		out[key] = vals
	}
	return out
}

// ColumnScore returns the total pooled score of a predicate column.
func (p *LiteralPool) ColumnScore(predIdx int) float64 {
	var t float64
	for _, l := range p.byColumn[predIdx] {
		t += l.score
	}
	return t
}

// BuildSpace constructs the candidate space of a claim from its relevance
// scores, the current priors, and the document literal pool.
func BuildSpace(cat *fragments.Catalog, claim *document.Claim, scores keywords.Scores, priors *Priors, pool *LiteralPool, cfg Config) *Space {
	s := &Space{cat: cat, claim: claim}
	s.buildFCs(scores, priors, cfg)
	s.buildScope(scores, priors, pool, cfg)
	return s
}

// normalizeScores turns raw IR scores into a distribution over retrieved
// fragments (zero for everything else).
func normalizeScores(raw map[int]float64) map[int]float64 {
	total := sumScores(raw)
	if total == 0 {
		return map[int]float64{}
	}
	out := make(map[int]float64, len(raw))
	for k, v := range raw {
		out[k] = v / total
	}
	return out
}

func (s *Space) buildFCs(scores keywords.Scores, priors *Priors, cfg Config) {
	cat := s.cat
	fnScore := normalizeScores(scores.Funcs)
	colScore := normalizeScores(scores.Cols)

	scale := cfg.ScoreScale
	if scale <= 0 {
		scale = 1
	}

	// Function weights.
	fw := make([]float64, len(cat.Funcs))
	for i, f := range cat.Funcs {
		w := scale*fnScore[f.ID] + cfg.Smoothing
		if cfg.UsePriors {
			w *= priors.Fn[i]
		}
		fw[i] = w
	}

	// Column options: star always, plus the best MaxAggCols-1 others.
	//
	// Text columns can only serve CountDistinct, and their keyword hits are
	// usually predicate evidence in disguise ("lifetime bans" describes
	// games='indef', not "distinct games"). §4.2 of the paper admits only
	// numerical columns as aggregation columns, yet its own Table 9 needs
	// CountDistinct over a text column — we resolve the tension by gating a
	// text column's aggregation-role weight with the claim's distinct-style
	// function evidence ("different", "distinct", "separate", …): without
	// such a cue the column falls back to the smoothing floor.
	cdScore := 0.0
	for _, f := range cat.Funcs {
		if f.Fn == sqlexec.CountDistinct {
			cdScore = fnScore[f.ID]
		}
	}
	cdGate := scale * cdScore / (1 + scale*cdScore)
	type colOpt struct {
		idx int
		w   float64
	}
	var copts []colOpt
	for i, f := range cat.Columns {
		evidence := scale * colScore[f.ID]
		if f.DistinctOnly {
			evidence *= cdGate
		}
		w := evidence + cfg.Smoothing
		if cfg.UsePriors {
			w *= priors.Col[i]
		}
		copts = append(copts, colOpt{idx: i, w: w})
	}
	sort.Slice(copts, func(a, b int) bool {
		if copts[a].w != copts[b].w {
			return copts[a].w > copts[b].w
		}
		return copts[a].idx < copts[b].idx
	})
	max := cfg.MaxAggCols
	if max <= 0 {
		max = 1
	}
	kept := make([]colOpt, 0, max)
	starIn := false
	for _, co := range copts {
		if len(kept) >= max {
			break
		}
		kept = append(kept, co)
		if co.idx == 0 {
			starIn = true
		}
	}
	if !starIn {
		// Star is always a candidate (counts are the most common claims).
		for _, co := range copts {
			if co.idx == 0 {
				kept = append(kept, co)
				break
			}
		}
	}

	// Valid (fn, col) pairs.
	var total float64
	for fi := range cat.Funcs {
		fn := sqlexec.AggFunc(fi)
		for _, co := range kept {
			colFrag := cat.Columns[co.idx]
			if !validPair(fn, colFrag) {
				continue
			}
			w := fw[fi] * co.w
			s.fcs = append(s.fcs, fcOption{fnIdx: fi, colIdx: co.idx, weight: w})
			total += w
		}
	}
	for i := range s.fcs {
		s.fcs[i].weight /= total
	}
	sort.Slice(s.fcs, func(a, b int) bool {
		if s.fcs[a].weight != s.fcs[b].weight {
			return s.fcs[a].weight > s.fcs[b].weight
		}
		if s.fcs[a].fnIdx != s.fcs[b].fnIdx {
			return s.fcs[a].fnIdx < s.fcs[b].fnIdx
		}
		return s.fcs[a].colIdx < s.fcs[b].colIdx
	})
}

// validPair mirrors the query model: star-only functions pair with "*",
// numeric aggregates need numeric columns, CountDistinct accepts any
// concrete column.
func validPair(fn sqlexec.AggFunc, col *fragments.Fragment) bool {
	if fn.StarOnly() {
		return col.Col.IsStar()
	}
	if col.Col.IsStar() {
		return false
	}
	if fn == sqlexec.CountDistinct {
		return true
	}
	return !col.DistinctOnly
}

func (s *Space) buildScope(scores keywords.Scores, priors *Priors, pool *LiteralPool, cfg Config) {
	cat := s.cat
	predScore := normalizeScores(scores.Preds)

	// Group the claim's retrieved literals by predicate column.
	claimLits := make(map[int]map[int]float64) // predIdx -> fragID -> score
	for id, sc := range predScore {
		f := cat.Fragment(id)
		j := cat.PredColumnIndex(f.Col)
		if j < 0 {
			continue
		}
		if claimLits[j] == nil {
			claimLits[j] = make(map[int]float64)
		}
		claimLits[j][id] = sc
	}

	// Rank predicate columns: keyword evidence for this claim, pooled
	// document evidence, and the learned restriction prior.
	type colRank struct {
		j int
		w float64
	}
	var ranks []colRank
	for j := range cat.PredColumns {
		w := cfg.Smoothing + sumScores(claimLits[j])
		if pool != nil {
			w += 0.25 * pool.ColumnScore(j)
		}
		if cfg.UsePriors {
			w *= priors.Restrict[j]
		}
		ranks = append(ranks, colRank{j: j, w: w})
	}
	sort.Slice(ranks, func(a, b int) bool {
		if ranks[a].w != ranks[b].w {
			return ranks[a].w > ranks[b].w
		}
		return ranks[a].j < ranks[b].j
	})
	nScope := cfg.ScopeCols
	if nScope <= 0 || nScope > len(ranks) {
		nScope = len(ranks)
	}

	for _, cr := range ranks[:nScope] {
		j := cr.j
		rj := priors.Restrict[j]
		if !cfg.UsePriors {
			rj = 0.25
		}
		// Literal options: claim-retrieved first, then pool literals.
		seen := make(map[int]bool)
		var opts []litOption
		add := func(fragID int, value string, score float64) {
			if seen[fragID] {
				return
			}
			seen[fragID] = true
			// Literal weight carries the restriction prior p_rj in both the
			// paper-literal and Bernoulli formulations; they differ only in
			// whether the none option is weighted by (1 - p_rj).
			scale := cfg.ScoreScale
			if scale <= 0 {
				scale = 1
			}
			w := (scale*score + cfg.Smoothing) * rj
			opts = append(opts, litOption{fragID: fragID, value: value, weight: w})
		}
		// Claim literals sorted by score for the cap.
		type cl struct {
			id    int
			score float64
		}
		var cls []cl
		for id, sc := range claimLits[j] {
			cls = append(cls, cl{id: id, score: sc})
		}
		sort.Slice(cls, func(a, b int) bool {
			if cls[a].score != cls[b].score {
				return cls[a].score > cls[b].score
			}
			return cls[a].id < cls[b].id
		})
		for _, c := range cls {
			add(c.id, cat.Fragment(c.id).Value, c.score)
		}
		if pool != nil {
			for _, pl := range pool.byColumn[j] {
				add(pl.fragID, pl.value, 0) // pool literals enter with smoothing mass only
			}
		}
		if cfg.LitsPerColumn > 0 && len(opts) > cfg.LitsPerColumn {
			opts = opts[:cfg.LitsPerColumn]
		}
		// The none option.
		noneW := cfg.NoPredScore
		if !cfg.PaperLiteralPriors {
			noneW *= (1 - rj)
		}
		opts = append(opts, litOption{fragID: -1, weight: noneW})
		// Normalize and sort.
		var total float64
		for _, o := range opts {
			total += o.weight
		}
		for i := range opts {
			opts[i].weight /= total
		}
		sort.Slice(opts, func(a, b int) bool {
			if opts[a].weight != opts[b].weight {
				return opts[a].weight > opts[b].weight
			}
			return opts[a].fragID < opts[b].fragID
		})
		noneIdx := 0
		for i, o := range opts {
			if o.fragID == -1 {
				noneIdx = i
			}
		}
		s.cols = append(s.cols, scopeColumn{
			predIdx: j,
			ref:     cat.PredColumns[j],
			options: opts,
			noneIdx: noneIdx,
		})
	}
}

// Candidate is one fully specified candidate query within a space.
type Candidate struct {
	fc     int
	choice []uint16 // option index per scope column
	Prob   float64  // base probability (keyword × prior, normalized)
}

// predCount returns the number of restrictions in a candidate.
func (s *Space) predCount(choice []uint16) int {
	n := 0
	for i, c := range choice {
		if s.cols[i].options[c].fragID != -1 {
			n++
		}
	}
	return n
}

// Query materializes the candidate's query.
func (s *Space) Query(c *Candidate) sqlexec.Query {
	fc := s.fcs[c.fc]
	q := sqlexec.Query{
		Agg:    sqlexec.AggFunc(fc.fnIdx),
		AggCol: s.cat.Columns[fc.colIdx].Col,
	}
	for i, ci := range c.choice {
		opt := s.cols[i].options[ci]
		if opt.fragID == -1 {
			continue
		}
		q.Preds = append(q.Preds, sqlexec.Predicate{Col: s.cols[i].ref, Value: opt.value})
	}
	return q
}

// enumeration heap node
type enumNode struct {
	vec    []uint16 // [0] = fc index, [1:] = per-column option index
	weight float64
}

type enumHeap []*enumNode

func (h enumHeap) Len() int            { return len(h) }
func (h enumHeap) Less(i, j int) bool  { return h[i].weight > h[j].weight }
func (h enumHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *enumHeap) Push(x interface{}) { *h = append(*h, x.(*enumNode)) }
func (h *enumHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopCandidates enumerates the n highest base-probability candidates with
// at most cfg.MaxPreds predicates, in descending probability order. The
// product space is explored best-first: each popped vector's successors
// increment one coordinate to the next-lower-weight option.
func (s *Space) TopCandidates(n int, maxPreds int) []*Candidate {
	if len(s.fcs) == 0 {
		return nil
	}
	dims := 1 + len(s.cols)
	weightAt := func(vec []uint16) float64 {
		w := s.fcs[vec[0]].weight
		for i, c := range s.cols {
			w *= c.options[vec[1+i]].weight
		}
		return w
	}
	limitAt := func(d int) int {
		if d == 0 {
			return len(s.fcs)
		}
		return len(s.cols[d-1].options)
	}

	start := make([]uint16, dims)
	h := &enumHeap{{vec: start, weight: weightAt(start)}}
	heap.Init(h)
	visited := map[string]bool{vecKey(start): true}

	var out []*Candidate
	pops := 0
	maxPops := n*20 + 2000
	for h.Len() > 0 && len(out) < n && pops < maxPops {
		node := heap.Pop(h).(*enumNode)
		pops++
		if s.predCount(node.vec[1:]) <= maxPreds {
			out = append(out, &Candidate{
				fc:     int(node.vec[0]),
				choice: append([]uint16(nil), node.vec[1:]...),
				Prob:   node.weight,
			})
		}
		for d := 0; d < dims; d++ {
			if int(node.vec[d])+1 >= limitAt(d) {
				continue
			}
			succ := append([]uint16(nil), node.vec...)
			succ[d]++
			k := vecKey(succ)
			if visited[k] {
				continue
			}
			visited[k] = true
			heap.Push(h, &enumNode{vec: succ, weight: weightAt(succ)})
		}
	}
	return out
}

func vecKey(vec []uint16) string {
	b := make([]byte, len(vec)*2)
	for i, v := range vec {
		b[2*i] = byte(v >> 8)
		b[2*i+1] = byte(v)
	}
	return string(b)
}

// baseMarginals computes, in closed form, the base-distribution marginals
// needed by soft EM: per-function mass, per-column-fragment mass and
// per-scope-column restriction mass.
func (s *Space) baseMarginals() (fn map[int]float64, col map[int]float64, restrict map[int]float64) {
	fn = make(map[int]float64)
	col = make(map[int]float64)
	restrict = make(map[int]float64)
	for _, fc := range s.fcs {
		fn[fc.fnIdx] += fc.weight
		col[fc.colIdx] += fc.weight
	}
	for _, c := range s.cols {
		restrict[c.predIdx] = 1 - c.options[c.noneIdx].weight
	}
	return
}
