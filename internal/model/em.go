package model

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"

	"aggchecker/internal/document"
	"aggchecker/internal/fragments"
	"aggchecker/internal/keywords"
	"aggchecker/internal/sqlexec"
)

// RankedQuery is one entry of a claim's posterior query distribution.
type RankedQuery struct {
	Query   sqlexec.Query
	Prob    float64 // posterior probability
	Result  float64 // evaluated query result (NaN when unevaluated)
	Matches bool    // result rounds to the claimed value
}

// ClaimResult is the verification outcome for one claim.
type ClaimResult struct {
	Claim *document.Claim
	// Ranked lists the most likely query translations, best first.
	Ranked []RankedQuery
	// PCorrect is the posterior probability that the claim is correct
	// (mass of matching candidates, weighted by pT).
	PCorrect float64
	// Erroneous is the tentative verdict: the maximum-likelihood query's
	// result does not round to the claimed value.
	Erroneous bool
}

// Best returns the maximum-likelihood query, or nil for an empty ranking.
func (r *ClaimResult) Best() *RankedQuery {
	if len(r.Ranked) == 0 {
		return nil
	}
	return &r.Ranked[0]
}

// Result is the outcome of expectation maximization over one document.
type Result struct {
	Claims     []ClaimResult
	Priors     *Priors
	Iterations int
	// EvaluatedQueries counts distinct queries sent to the evaluator
	// (deduplicated across the claims of the document).
	EvaluatedQueries int
}

// claimState carries per-claim working data across EM iterations; the
// results map is the claim-level evaluation memo (cube-level caching lives
// in the engine).
type claimState struct {
	space   *Space
	top     []*Candidate
	queries []sqlexec.Query
	results map[string]float64
	// matched indexes top for candidates whose result rounds to the claim.
	matched     []int
	probMatched float64
}

// IterationUpdate is the observer's view of the EM state after one
// iteration's expectation step: a full per-claim result snapshot assembled
// under the current priors and evaluation results. Snapshots are built only
// when an observer is installed; the slices are owned by the receiver.
type IterationUpdate struct {
	// Iteration is 1-based; Final marks the concluding expectation pass
	// under the converged priors (its claims equal the returned Result's).
	Iteration int
	Final     bool
	// Delta is the maximum prior movement of the maximization step that
	// followed this iteration (0 when priors are disabled or Final).
	Delta float64
	// Claims is the per-claim snapshot, index-aligned with doc.Claims.
	Claims []ClaimResult
	// EvaluatedQueries is the running count of distinct queries evaluated.
	EvaluatedQueries int
}

// Observer receives an IterationUpdate after every EM iteration. It is
// called synchronously from the EM loop, so a blocking observer provides
// natural back-pressure for streaming consumers; combined with context
// cancellation it lets a caller abandon a run mid-flight.
type Observer func(IterationUpdate)

// Run executes Algorithm 3: starting from uniform priors it alternates
// per-claim expectation steps (candidate construction, evaluation of the
// top candidates, posterior bookkeeping) with maximization of the document
// priors, then assembles final claim results.
//
// The loop honors ctx between iterations and after every claim batch
// (evaluators additionally stop mid-batch); a cancelled run returns
// (nil, ctx.Err()). obs, when non-nil, is invoked after every iteration
// with a snapshot of the current per-claim results.
func Run(ctx context.Context, cat *fragments.Catalog, doc *document.Document, scores []keywords.Scores, ev Evaluator, cfg Config, obs Observer) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pool := BuildPool(cat, scores, cfg)
	// Evaluators that merge candidates into cubes key their caches on
	// per-column literal sets; installing the document-wide pool up front
	// (§6.3: "all literals with non-zero probability for any claim") keeps
	// cube signatures stable across claims and EM iterations.
	if p, ok := ev.(interface{ SetPool(map[string][]string) }); ok {
		p.SetPool(pool.Literals(cat))
	}
	// Evaluators whose batches pool across concurrently-checked documents
	// (corpus audits) track document lifetimes: a pooled window flushes when
	// every in-flight document has a batch parked, so the EM loop must
	// bracket its run or the other documents wait out the flush deadline
	// every iteration.
	if d, ok := ev.(interface {
		BeginDocument()
		EndDocument()
	}); ok {
		d.BeginDocument()
		defer d.EndDocument()
	}
	priors := UniformPriors(cat)
	states := make([]*claimState, len(doc.Claims))
	for i := range states {
		states[i] = &claimState{results: make(map[string]float64)}
	}

	res := &Result{}
	iters := cfg.MaxEMIters
	if !cfg.UsePriors || iters < 1 {
		iters = 1
	}
	for iter := 0; iter < iters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iterations++
		eStep(ctx, cat, doc, scores, ev, cfg, pool, priors, states, res)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !cfg.UsePriors {
			notify(obs, res, doc, states, cfg, 0, false)
			break
		}
		stats := newPriorStats(cat)
		for i := range states {
			accumulate(cat, states[i], cfg, stats)
		}
		next := stats.maximize(cfg.PriorAlpha)
		delta := priors.MaxDelta(next)
		priors = next
		notify(obs, res, doc, states, cfg, delta, false)
		if delta < cfg.ConvergeEps {
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Final expectation pass under the converged priors.
	eStep(ctx, cat, doc, scores, ev, cfg, pool, priors, states, res)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res.Priors = priors
	res.Claims = make([]ClaimResult, len(doc.Claims))
	for i := range states {
		res.Claims[i] = assemble(doc.Claims[i], states[i], cfg)
	}
	notify(obs, res, doc, states, cfg, 0, true)
	return res, nil
}

// notify assembles a per-claim snapshot and delivers it to the observer.
// Assembly only happens when an observer is installed — plain Check runs
// pay nothing for the streaming hook.
func notify(obs Observer, res *Result, doc *document.Document, states []*claimState, cfg Config, delta float64, final bool) {
	if obs == nil {
		return
	}
	claims := make([]ClaimResult, len(states))
	for i := range states {
		claims[i] = assemble(doc.Claims[i], states[i], cfg)
	}
	obs(IterationUpdate{
		Iteration:        res.Iterations,
		Final:            final,
		Delta:            delta,
		Claims:           claims,
		EvaluatedQueries: res.EvaluatedQueries,
	})
}

// eStep rebuilds spaces under the current priors, evaluates the top
// candidates of every claim, and recomputes match bookkeeping. It runs in
// three phases: claim workers build candidate spaces and collect the
// queries still unevaluated; the union of those needs — deduplicated
// across claims — goes to the evaluator as one document-level batch (§6.3:
// merged cube passes span the claims of a document); and claim workers
// redo the match bookkeeping. All accumulation is per-claim, so the
// outcome is deterministic.
func eStep(ctx context.Context, cat *fragments.Catalog, doc *document.Document, scores []keywords.Scores, ev Evaluator, cfg Config, pool *LiteralPool, priors *Priors, states []*claimState, res *Result) {
	workers := runtime.GOMAXPROCS(0)

	// Phase 1: candidate construction and per-claim evaluation needs.
	needQ := make([][]sqlexec.Query, len(states))
	needKeys := make([][]string, len(states))
	runParallel(workers, len(states), func(i int) {
		st := states[i]
		st.space = BuildSpace(cat, doc.Claims[i], scores[i], priors, pool, cfg)
		st.top = st.space.TopCandidates(cfg.EvalBudget, cfg.MaxPreds)
		st.queries = make([]sqlexec.Query, len(st.top))
		for j, c := range st.top {
			q := st.space.Query(c)
			st.queries[j] = q
			key := q.Key()
			if _, ok := st.results[key]; !ok {
				needQ[i] = append(needQ[i], q)
				needKeys[i] = append(needKeys[i], key)
				st.results[key] = math.NaN() // reserve to dedupe within the claim
			}
		}
	})

	// Phase 2: one cross-claim batch. Claims frequently share candidates
	// (same table, same salient literals), so the union is deduplicated by
	// query key before evaluation and results are distributed back to every
	// claim that asked.
	var batch []sqlexec.Query
	batchIdx := make(map[string]int)
	for i := range states {
		for k, key := range needKeys[i] {
			if _, ok := batchIdx[key]; !ok {
				batchIdx[key] = len(batch)
				batch = append(batch, needQ[i][k])
			}
		}
	}
	if len(batch) > 0 {
		vals := ev.EvaluateBatch(ctx, batch)
		res.EvaluatedQueries += len(batch)
		for i := range states {
			st := states[i]
			for _, key := range needKeys[i] {
				st.results[key] = vals[batchIdx[key]]
			}
		}
	}

	// Phase 3: match bookkeeping under the fresh results.
	runParallel(workers, len(states), func(i int) {
		st := states[i]
		st.matched = st.matched[:0]
		st.probMatched = 0
		for j, c := range st.top {
			r := st.results[st.queries[j].Key()]
			if Matches(r, doc.Claims[i].Claimed.Value) {
				st.matched = append(st.matched, j)
				st.probMatched += c.Prob
			}
		}
	})
}

// runParallel executes fn(0..n-1) on a bounded worker pool. Each index is
// processed exactly once; fn must only touch per-index state.
func runParallel(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// zOf returns the posterior normalization constant of a claim state:
// Z = (1-pT)·(1-M) + pT·M with M the matched base mass (base mass totals 1).
func zOf(st *claimState, cfg Config) float64 {
	if !cfg.UseEvalResults {
		return 1
	}
	return (1-cfg.PT)*(1-st.probMatched) + cfg.PT*st.probMatched
}

// posteriorWeight scales a candidate's base probability by the evaluation
// factor Pr(Ec|Qc).
func posteriorWeight(prob float64, matches bool, cfg Config) float64 {
	if !cfg.UseEvalResults {
		return prob
	}
	if matches {
		return prob * cfg.PT
	}
	return prob * (1 - cfg.PT)
}

// mlIndex returns the index (into st.top) of the maximum-likelihood
// candidate under the posterior.
func mlIndex(st *claimState, claimed float64, cfg Config) int {
	best, bestW := -1, -1.0
	for j, c := range st.top {
		r := st.results[st.queries[j].Key()]
		w := posteriorWeight(c.Prob, Matches(r, claimed), cfg)
		if w > bestW {
			best, bestW = j, w
		}
	}
	return best
}

// accumulate adds a claim's contribution to the maximization statistics:
// hard EM counts the maximum-likelihood query; soft EM adds posterior
// marginals (closed-form base marginals plus the matched-candidate
// correction).
func accumulate(cat *fragments.Catalog, st *claimState, cfg Config, stats *priorStats) {
	if len(st.top) == 0 {
		return
	}
	claimed := st.space.claim.Claimed.Value
	if !cfg.SoftEM {
		if j := mlIndex(st, claimed, cfg); j >= 0 {
			stats.addQuery(cat, st.queries[j])
		}
		return
	}
	z := zOf(st, cfg)
	if z <= 0 {
		return
	}
	lowFactor := (1 - cfg.PT) / z
	boost := (2*cfg.PT - 1) / z
	if !cfg.UseEvalResults {
		lowFactor, boost = 1, 0
	}
	fnM, colM, restrictM := st.space.baseMarginals()
	stats.claims++
	for f, m := range fnM {
		stats.fn[f] += m * lowFactor
	}
	for c, m := range colM {
		stats.col[c] += m * lowFactor
	}
	for p, m := range restrictM {
		stats.restrict[p] += m * lowFactor
	}
	if boost != 0 {
		for _, j := range st.matched {
			c := st.top[j]
			fc := st.space.fcs[c.fc]
			stats.fn[fc.fnIdx] += c.Prob * boost
			stats.col[fc.colIdx] += c.Prob * boost
			for k, ci := range c.choice {
				if st.space.cols[k].options[ci].fragID != -1 {
					stats.restrict[st.space.cols[k].predIdx] += c.Prob * boost
				}
			}
		}
	}
}

// assemble produces the final ranked query list and verdict for a claim.
func assemble(claim *document.Claim, st *claimState, cfg Config) ClaimResult {
	out := ClaimResult{Claim: claim}
	if len(st.top) == 0 {
		return out
	}
	z := zOf(st, cfg)
	type scored struct {
		j int
		w float64
	}
	seen := make(map[string]bool)
	var pool []scored
	add := func(j int) {
		key := st.queries[j].Key()
		if seen[key] {
			return
		}
		seen[key] = true
		r := st.results[key]
		w := posteriorWeight(st.top[j].Prob, Matches(r, claim.Claimed.Value), cfg)
		pool = append(pool, scored{j: j, w: w})
	}
	// Top base candidates plus every matching candidate (whose posterior
	// is boosted by pT and may overtake).
	limit := cfg.TopQueries * 3
	if limit > len(st.top) {
		limit = len(st.top)
	}
	for j := 0; j < limit; j++ {
		add(j)
	}
	for _, j := range st.matched {
		add(j)
	}
	sort.Slice(pool, func(a, b int) bool {
		if pool[a].w != pool[b].w {
			return pool[a].w > pool[b].w
		}
		return st.queries[pool[a].j].Key() < st.queries[pool[b].j].Key()
	})
	n := cfg.TopQueries
	if n > len(pool) {
		n = len(pool)
	}
	for _, sc := range pool[:n] {
		r := st.results[st.queries[sc.j].Key()]
		out.Ranked = append(out.Ranked, RankedQuery{
			Query:   st.queries[sc.j],
			Prob:    sc.w / z,
			Result:  r,
			Matches: Matches(r, claim.Claimed.Value),
		})
	}
	if cfg.UseEvalResults {
		out.PCorrect = cfg.PT * st.probMatched / z
	} else if len(out.Ranked) > 0 && out.Ranked[0].Matches {
		out.PCorrect = 1
	}
	if len(out.Ranked) > 0 {
		out.Erroneous = !out.Ranked[0].Matches
	}
	return out
}
