// Package model implements §5 of the paper: the probabilistic model that
// maps each claim to a distribution over Simple Aggregate Queries, fitted by
// expectation maximization across the whole document. Candidate queries
// combine per-category options (aggregation function, aggregation column,
// per-column predicate choice); their posterior multiplies keyword-based
// relevance (Sc), document priors (Θ) and evaluation evidence (Ec, weighted
// by the true-claim probability pT). Because the base distribution
// factorizes per category, normalization constants and marginals are
// computed in closed form and only the (small) set of evaluated, matching
// candidates needs enumeration.
package model

import (
	"context"

	"aggchecker/internal/sqlexec"
)

// Config tunes the probabilistic model. DefaultConfig matches the paper's
// main configuration; the ablation flags correspond to Table 5/10 rows and
// the budget knobs to Figure 13.
type Config struct {
	// TopKHits is the number of IR hits retrieved per fragment category
	// ("# Hits", 20 in the paper's main version).
	TopKHits int
	// MaxAggCols bounds the aggregation-column options per claim
	// ("# Aggregates" in Figure 13). The star column is always included.
	MaxAggCols int
	// MaxPreds is the maximum number of equality predicates per candidate
	// query (m = 3 in §6.3).
	MaxPreds int
	// ScopeCols is the number of predicate columns in a claim's evaluation
	// scope (PickScope).
	ScopeCols int
	// LitsPerColumn bounds the literal options per scope column.
	LitsPerColumn int
	// EvalBudget is the number of top candidates evaluated per claim and
	// EM iteration (the paper evaluates "tens of thousands" per document).
	EvalBudget int
	// TopQueries is the length of the per-claim ranked query list kept for
	// the user interface and top-k coverage metrics.
	TopQueries int

	// PT is the assumed a-priori probability of a claim being correct
	// (pT = 0.999 in the paper; Figure 12 sweeps it).
	PT float64
	// Smoothing is the additive mass given to fragments outside the
	// retrieved set, letting evaluation results and priors resurrect
	// keyword-invisible fragments (Example 5 of the paper).
	Smoothing float64
	// ScoreScale multiplies normalized relevance scores before smoothing.
	// It sets how decisively keyword evidence beats the smoothing floor —
	// Figure 2(e) of the paper shows two-predicate candidates leading the
	// keyword distribution when their fragments match claim keywords, which
	// requires strong literals to outweigh the no-predicate mass.
	ScoreScale float64
	// NoPredScore is the relevance mass of "no restriction on this column".
	NoPredScore float64

	// UseEvalResults includes the Ec factor (ablation: Table 10 row 2).
	UseEvalResults bool
	// UsePriors includes the learned Θ factor (ablation: Table 10 row 3).
	UsePriors bool
	// PaperLiteralPriors reproduces §5.3's literal prior formula, which
	// multiplies p_ri only over restricted columns; the default uses the
	// full Bernoulli product (see DESIGN.md).
	PaperLiteralPriors bool
	// SoftEM updates priors from posterior marginals instead of
	// maximum-likelihood query counts (the paper uses hard counts).
	SoftEM bool

	// MaxEMIters bounds expectation-maximization iterations.
	MaxEMIters int
	// ConvergeEps stops EM when no prior component moves more than this.
	ConvergeEps float64
	// PriorAlpha is the Dirichlet smoothing of the maximization step.
	PriorAlpha float64
}

// DefaultConfig returns the paper's main configuration.
func DefaultConfig() Config {
	return Config{
		TopKHits:       20,
		MaxAggCols:     8,
		MaxPreds:       3,
		ScopeCols:      8,
		LitsPerColumn:  8,
		EvalBudget:     2000,
		TopQueries:     20,
		PT:             0.999,
		Smoothing:      0.02,
		ScoreScale:     4.0,
		NoPredScore:    0.35,
		UseEvalResults: true,
		UsePriors:      true,
		MaxEMIters:     5,
		ConvergeEps:    1e-3,
		PriorAlpha:     0.5,
	}
}

// Evaluator supplies query results to the EM loop. Package evaluate
// provides implementations (naive, merged, merged+cached); they satisfy the
// interface structurally so no import cycle arises.
type Evaluator interface {
	// EvaluateBatch returns the result of each query, positionally. NaN
	// marks queries whose result is undefined. Implementations must stop
	// early (returning NaN for unevaluated slots) once ctx is cancelled;
	// the EM loop checks ctx.Err() after every batch.
	EvaluateBatch(ctx context.Context, queries []sqlexec.Query) []float64
}
