package evaluate

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"aggchecker/internal/db"
	"aggchecker/internal/sqlexec"
)

func testDB(t *testing.T) *db.Database {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("region,product,units,price\n")
	rng := rand.New(rand.NewSource(4))
	regions := []string{"east", "west", "north", "south"}
	products := []string{"widget", "gadget", "doohickey"}
	for i := 0; i < 400; i++ {
		sb.WriteString(regions[rng.Intn(4)] + "," + products[rng.Intn(3)] + ",")
		sb.WriteString(strings.TrimSpace(itoa(rng.Intn(50))) + "," + itoa(5+rng.Intn(20)) + "\n")
	}
	tbl, err := db.LoadCSV(strings.NewReader(sb.String()), "sales")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase("shop")
	d.MustAddTable(tbl)
	return d
}

func itoa(v int) string {
	return strings.TrimSpace(strings.Map(func(r rune) rune { return r }, fmtInt(v)))
}

func fmtInt(v int) string {
	if v == 0 {
		return "0"
	}
	digits := ""
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return digits
}

func cr(col string) sqlexec.ColumnRef { return sqlexec.ColumnRef{Table: "sales", Column: col} }

// testBatch builds a mixed batch exercising every function and several
// predicate column sets.
func testBatch() []sqlexec.Query {
	regions := []string{"east", "west", "north", "south"}
	products := []string{"widget", "gadget"}
	var qs []sqlexec.Query
	for _, r := range regions {
		qs = append(qs,
			sqlexec.Query{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{{Col: cr("region"), Value: r}}},
			sqlexec.Query{Agg: sqlexec.Sum, AggCol: cr("units"), Preds: []sqlexec.Predicate{{Col: cr("region"), Value: r}}},
			sqlexec.Query{Agg: sqlexec.Percentage, Preds: []sqlexec.Predicate{{Col: cr("region"), Value: r}}},
		)
		for _, p := range products {
			qs = append(qs,
				sqlexec.Query{Agg: sqlexec.Avg, AggCol: cr("price"), Preds: []sqlexec.Predicate{
					{Col: cr("region"), Value: r}, {Col: cr("product"), Value: p}}},
				sqlexec.Query{Agg: sqlexec.ConditionalProbability, Preds: []sqlexec.Predicate{
					{Col: cr("region"), Value: r}, {Col: cr("product"), Value: p}}},
			)
		}
	}
	qs = append(qs,
		sqlexec.Query{Agg: sqlexec.Count},
		sqlexec.Query{Agg: sqlexec.CountDistinct, AggCol: cr("product")},
		sqlexec.Query{Agg: sqlexec.Max, AggCol: cr("units")},
		sqlexec.Query{Agg: sqlexec.Min, AggCol: cr("price"), Preds: []sqlexec.Predicate{{Col: cr("product"), Value: "gadget"}}},
	)
	return qs
}

func TestEvaluatorsAgree(t *testing.T) {
	d := testDB(t)
	naive := &NaiveEvaluator{Engine: sqlexec.NewEngine(d)}
	merged := NewCubeEvaluator(sqlexec.NewEngine(d))
	cachedEngine := sqlexec.NewEngine(d)
	cached := NewCubeEvaluator(cachedEngine)

	batch := testBatch()
	a := naive.EvaluateBatch(context.Background(), batch)
	b := merged.EvaluateBatch(context.Background(), batch)
	c := cached.EvaluateBatch(context.Background(), batch)
	// Run the cached evaluator twice: the second pass must hit the cache
	// and produce identical results.
	c2 := cached.EvaluateBatch(context.Background(), batch)
	for i := range batch {
		if !eqNaN(a[i], b[i]) || !eqNaN(a[i], c[i]) || !eqNaN(a[i], c2[i]) {
			t.Errorf("query %s: naive=%v merged=%v cached=%v cached2=%v",
				batch[i].Key(), a[i], b[i], c[i], c2[i])
		}
	}
}

func eqNaN(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) < 1e-9
}

func TestMergingReducesScans(t *testing.T) {
	d := testDB(t)
	naiveEngine := sqlexec.NewEngine(d)
	naive := &NaiveEvaluator{Engine: naiveEngine}
	mergedEngine := sqlexec.NewEngine(d)
	mergedEngine.Tune(sqlexec.WithCaching(false))
	merged := NewCubeEvaluator(mergedEngine)

	batch := testBatch()
	naive.EvaluateBatch(context.Background(), batch)
	merged.EvaluateBatch(context.Background(), batch)
	naiveRows := naiveEngine.Stats.RowsScanned.Load()
	mergedRows := mergedEngine.Stats.RowsScanned.Load()
	if mergedRows >= naiveRows {
		t.Errorf("merging should scan fewer rows: naive=%d merged=%d", naiveRows, mergedRows)
	}
	// The whole batch uses two predicate columns, so it should collapse
	// into very few cube passes.
	if passes := mergedEngine.Stats.CubePasses.Load(); passes > 4 {
		t.Errorf("cube passes = %d, want <= 4", passes)
	}
}

func TestCachingEliminatesRepeatScans(t *testing.T) {
	d := testDB(t)
	e := sqlexec.NewEngine(d)
	ev := NewCubeEvaluator(e)
	batch := testBatch()
	ev.EvaluateBatch(context.Background(), batch)
	passes := e.Stats.CubePasses.Load()
	// Re-evaluating the same batch (as happens across EM iterations) must
	// not trigger new cube passes.
	ev.EvaluateBatch(context.Background(), batch)
	if got := e.Stats.CubePasses.Load(); got != passes {
		t.Errorf("cached re-evaluation ran %d extra passes", got-passes)
	}
}

func TestSetPoolStabilizesSignatures(t *testing.T) {
	d := testDB(t)
	e := sqlexec.NewEngine(d)
	ev := NewCubeEvaluator(e)
	ev.SetPool(map[string][]string{
		cr("region").String():  {"east", "west", "north", "south"},
		cr("product").String(): {"widget", "gadget", "doohickey"},
	})
	// First, a narrow batch touching one literal.
	q1 := []sqlexec.Query{{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{{Col: cr("region"), Value: "east"}}}}
	ev.EvaluateBatch(context.Background(), q1)
	passes := e.Stats.CubePasses.Load()
	// A later batch over another literal of the same column must reuse the
	// same cube: the pool already contained the literal.
	q2 := []sqlexec.Query{{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{{Col: cr("region"), Value: "west"}}}}
	ev.EvaluateBatch(context.Background(), q2)
	if got := e.Stats.CubePasses.Load(); got != passes {
		t.Errorf("pooled literals should make the second batch a cache hit (passes %d -> %d)", passes, got)
	}
}

func TestSubsetGroupsShareHostCube(t *testing.T) {
	d := testDB(t)
	e := sqlexec.NewEngine(d)
	e.Tune(sqlexec.WithCaching(false))
	ev := NewCubeEvaluator(e)
	// Three column sets: {region}, {product}, {region, product}; the first
	// two are subsets of the third, so one cube pass suffices.
	batch := []sqlexec.Query{
		{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{{Col: cr("region"), Value: "east"}}},
		{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{{Col: cr("product"), Value: "widget"}}},
		{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{
			{Col: cr("region"), Value: "east"}, {Col: cr("product"), Value: "widget"}}},
	}
	res := ev.EvaluateBatch(context.Background(), batch)
	if passes := e.Stats.CubePasses.Load(); passes != 1 {
		t.Errorf("cube passes = %d, want 1 (subset merging)", passes)
	}
	// Cross-check results directly.
	direct := &NaiveEvaluator{Engine: sqlexec.NewEngine(d)}
	want := direct.EvaluateBatch(context.Background(), batch)
	for i := range batch {
		if !eqNaN(res[i], want[i]) {
			t.Errorf("query %d: got %v want %v", i, res[i], want[i])
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	d := testDB(t)
	ev := NewCubeEvaluator(sqlexec.NewEngine(d))
	if got := ev.EvaluateBatch(context.Background(), nil); len(got) != 0 {
		t.Errorf("empty batch returned %v", got)
	}
}

func TestConcurrentBatches(t *testing.T) {
	d := testDB(t)
	e := sqlexec.NewEngine(d)
	ev := NewCubeEvaluator(e)
	batch := testBatch()
	want := (&NaiveEvaluator{Engine: sqlexec.NewEngine(d)}).EvaluateBatch(context.Background(), batch)
	done := make(chan []float64, 8)
	for w := 0; w < 8; w++ {
		go func() { done <- ev.EvaluateBatch(context.Background(), batch) }()
	}
	for w := 0; w < 8; w++ {
		got := <-done
		for i := range batch {
			if !eqNaN(got[i], want[i]) {
				t.Errorf("concurrent batch query %d: got %v want %v", i, got[i], want[i])
			}
		}
	}
}
