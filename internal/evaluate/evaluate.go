// Package evaluate implements §6 of the paper: massive-scale evaluation of
// candidate queries. Three strategies regenerate the rows of Table 6:
//
//   - NaiveEvaluator evaluates every candidate with its own scan;
//   - CubeEvaluator merges the candidates of a batch into cube queries with
//     InOrDefault literal coding (query merging);
//   - CubeEvaluator over an engine with caching enabled additionally reuses
//     cube results across claims and EM iterations (result caching).
//
// All evaluators satisfy the model.Evaluator interface structurally and are
// safe for concurrent use.
package evaluate

import (
	"math"
	"sort"
	"strings"
	"sync"

	"aggchecker/internal/sqlexec"
)

// NaiveEvaluator evaluates each query independently (Table 6 row "Naive").
type NaiveEvaluator struct {
	Engine *sqlexec.Engine
}

// EvaluateBatch evaluates the queries with one scan each.
func (n *NaiveEvaluator) EvaluateBatch(queries []sqlexec.Query) []float64 {
	out := make([]float64, len(queries))
	for i, q := range queries {
		v, err := n.Engine.Evaluate(q)
		if err != nil {
			v = math.NaN()
		}
		out[i] = v
	}
	return out
}

// CubeEvaluator merges batches of candidate queries into cube passes. A
// batch is grouped by join scope and predicate column set; groups whose
// column set is contained in another group's are answered from the larger
// cube. Literal sets per column are document-wide (SetPool) so cube
// signatures stay stable across claims, which is what makes the engine's
// result cache effective (§6.3); literals seen in batches are accumulated
// as a fallback when no pool is provided.
type CubeEvaluator struct {
	Engine *sqlexec.Engine

	mu   sync.Mutex
	pool map[string]map[string]bool // ColumnRef.String() -> literal set
}

// NewCubeEvaluator returns a merging evaluator over the engine.
func NewCubeEvaluator(e *sqlexec.Engine) *CubeEvaluator {
	return &CubeEvaluator{Engine: e, pool: make(map[string]map[string]bool)}
}

// SetPool installs the document-wide literal pool (column reference string
// → literals), replacing any accumulated literals for those columns.
func (c *CubeEvaluator) SetPool(pool map[string][]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for col, lits := range pool {
		set := make(map[string]bool, len(lits))
		for _, l := range lits {
			set[l] = true
		}
		c.pool[col] = set
	}
}

// poolLiterals merges the pool with the batch's literals for a column and
// returns them sorted (deterministic cube signatures).
func (c *CubeEvaluator) poolLiterals(col string, batch map[string]bool) []string {
	c.mu.Lock()
	set := c.pool[col]
	if set == nil {
		set = make(map[string]bool)
		c.pool[col] = set
	}
	for l := range batch {
		set[l] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// EvaluateBatch merges the batch into as few cube passes as the engine
// cache allows and answers every query.
func (c *CubeEvaluator) EvaluateBatch(queries []sqlexec.Query) []float64 {
	out := make([]float64, len(queries))
	defaultTable := c.Engine.DefaultTable()

	// Group queries by (join scope, predicate column set).
	type groupKey struct {
		tables string
		cols   string
	}
	type group struct {
		sig      string
		tables   []string
		colRefs  []sqlexec.ColumnRef
		colSet   map[string]bool
		queries  []int // indexes into the batch
		literals map[string]map[string]bool
	}
	groups := make(map[groupKey]*group)
	for i, q := range queries {
		tables := q.Tables(defaultTable)
		var colKeys []string
		colSet := make(map[string]bool, len(q.Preds))
		var colRefs []sqlexec.ColumnRef
		for _, p := range q.Preds {
			k := p.Col.String()
			if !colSet[k] {
				colSet[k] = true
				colKeys = append(colKeys, k)
				colRefs = append(colRefs, p.Col)
			}
		}
		sort.Strings(colKeys)
		key := groupKey{tables: strings.Join(sortedCopy(tables), ","), cols: strings.Join(colKeys, "|")}
		g, ok := groups[key]
		if !ok {
			g = &group{
				sig:      key.tables + "#" + key.cols,
				tables:   tables,
				colRefs:  colRefs,
				colSet:   colSet,
				literals: make(map[string]map[string]bool),
			}
			groups[key] = g
		}
		g.queries = append(g.queries, i)
		for _, p := range q.Preds {
			k := p.Col.String()
			if g.literals[k] == nil {
				g.literals[k] = make(map[string]bool)
			}
			g.literals[k][p.Value] = true
		}
	}

	// Merge groups into maximal column sets (within the cube dimension
	// limit): a group whose columns are a subset of another group's columns
	// with the same join scope is answered from the latter's cube.
	glist := make([]*group, 0, len(groups))
	for _, g := range groups {
		glist = append(glist, g)
	}
	sort.Slice(glist, func(a, b int) bool {
		if len(glist[a].colSet) != len(glist[b].colSet) {
			return len(glist[a].colSet) > len(glist[b].colSet)
		}
		return glist[a].sig < glist[b].sig
	})
	var hosts []*group
	assign := make(map[*group]*group)
	for _, g := range glist {
		var host *group
		for _, h := range hosts {
			if sameTables(g.tables, h.tables) && subset(g.colSet, h.colSet) {
				host = h
				break
			}
		}
		if host == nil {
			hosts = append(hosts, g)
			host = g
		}
		assign[g] = host
	}
	// Fold literals and queries into hosts.
	hostQueries := make(map[*group][]int)
	for _, g := range glist {
		h := assign[g]
		hostQueries[h] = append(hostQueries[h], g.queries...)
		for col, lits := range g.literals {
			if h.literals[col] == nil {
				h.literals[col] = make(map[string]bool)
			}
			for l := range lits {
				h.literals[col][l] = true
			}
		}
		// Host must know every predicate column of its members.
		for _, ref := range g.colRefs {
			if !h.colSet[ref.String()] {
				h.colSet[ref.String()] = true
				h.colRefs = append(h.colRefs, ref)
			}
		}
	}

	caching := c.Engine.CachingEnabled()
	for _, h := range hosts {
		qidx := hostQueries[h]
		// Cost model (§6.1): a cube pass costs a scan with 2^dims
		// accumulator updates per row. Without a cache to amortize it, a
		// host holding only a couple of queries is cheaper to answer with
		// direct scans; with caching on, the cube is an investment reused
		// by later claims and EM iterations.
		if !caching && len(qidx) <= 2 {
			for _, i := range qidx {
				v, err := c.Engine.Evaluate(queries[i])
				if err != nil {
					v = math.NaN()
				}
				out[i] = v
			}
			continue
		}
		dims := make([]sqlexec.DimSpec, 0, len(h.colRefs))
		refs := append([]sqlexec.ColumnRef(nil), h.colRefs...)
		sort.Slice(refs, func(a, b int) bool { return refs[a].String() < refs[b].String() })
		for _, ref := range refs {
			dims = append(dims, sqlexec.DimSpec{
				Col:      ref,
				Literals: c.poolLiterals(ref.String(), h.literals[ref.String()]),
			})
		}
		var reqs []sqlexec.AggRequest
		for _, i := range qidx {
			reqs = append(reqs, sqlexec.AggRequest{Fn: queries[i].Agg, Col: queries[i].AggCol})
		}
		cube, err := c.Engine.CubeFor(h.tables, dims, reqs)
		if err != nil {
			// Fall back to direct evaluation for this group.
			for _, i := range qidx {
				v, err2 := c.Engine.Evaluate(queries[i])
				if err2 != nil {
					v = math.NaN()
				}
				out[i] = v
			}
			continue
		}
		for _, i := range qidx {
			v, ok := cube.Value(queries[i])
			if !ok {
				var err2 error
				v, err2 = c.Engine.Evaluate(queries[i])
				if err2 != nil {
					v = math.NaN()
				}
			} else {
				c.Engine.Stats.CubeAnswers.Add(1)
			}
			out[i] = v
		}
	}
	return out
}

func sortedCopy(ss []string) []string {
	out := make([]string, len(ss))
	copy(out, ss)
	sort.Strings(out)
	return out
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sameTables(a, b []string) bool {
	return strings.Join(sortedCopy(a), ",") == strings.Join(sortedCopy(b), ",")
}
