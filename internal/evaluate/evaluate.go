// Package evaluate implements §6 of the paper: massive-scale evaluation of
// candidate queries. Three strategies regenerate the rows of Table 6:
//
//   - NaiveEvaluator evaluates every candidate with its own scan;
//   - CubeEvaluator merges the candidates of a batch into cube queries with
//     InOrDefault literal coding (query merging);
//   - CubeEvaluator over an engine with caching enabled additionally reuses
//     cube results across claims and EM iterations (result caching).
//
// Planning and execution live in sqlexec (Engine.EvaluateBatch): the
// evaluators here add policy — the document-wide literal pool that keeps
// cube signatures stable — and satisfy the model.Evaluator interface
// structurally so no import cycle arises. All evaluators are safe for
// concurrent use.
package evaluate

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"

	"aggchecker/internal/sqlexec"
)

// NaiveEvaluator evaluates each query independently (Table 6 row "Naive").
type NaiveEvaluator struct {
	Engine *sqlexec.Engine
	// Workers bounds the scan worker pool per batch; ≤ 0 uses GOMAXPROCS.
	// The naive baseline gets the same parallelism as the merged
	// strategies so Table 6 compares evaluation strategy, not scheduling.
	Workers int
}

// EvaluateBatch evaluates the queries with one scan each, fanned out over a
// bounded worker pool. Once ctx is cancelled the remaining scans are
// skipped and their slots stay NaN.
func (n *NaiveEvaluator) EvaluateBatch(ctx context.Context, queries []sqlexec.Query) []float64 {
	out := make([]float64, len(queries))
	for i := range out {
		out[i] = math.NaN()
	}
	workers := n.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	eval := func(i int) {
		v, err := n.Engine.EvaluateContext(ctx, queries[i])
		if err != nil {
			v = math.NaN()
		}
		out[i] = v
	}
	if workers <= 1 {
		for i := range queries {
			if ctx.Err() != nil {
				break
			}
			eval(i)
		}
		return out
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				eval(i)
			}
		}()
	}
	for i := range queries {
		if ctx.Err() != nil {
			break
		}
		ch <- i
	}
	close(ch)
	wg.Wait()
	return out
}

// CubeEvaluator merges batches of candidate queries into cube passes via
// the engine's batch planner. Literal sets per column are document-wide
// (SetPool) so cube signatures stay stable across claims, which is what
// makes the engine's result cache effective (§6.3); literals seen in
// batches are accumulated as a fallback when no pool is provided.
type CubeEvaluator struct {
	Engine *sqlexec.Engine
	// Workers bounds the engine-side worker pool per batch; ≤ 0 uses
	// GOMAXPROCS.
	Workers int
	// Runner, when non-nil, executes the batches instead of the engine
	// directly — a sqlexec.Window pools them with batches from other
	// documents being checked concurrently (corpus audits). Nil keeps the
	// direct engine path.
	Runner BatchRunner

	mu   sync.Mutex
	pool map[string]map[string]bool // ColumnRef.String() -> literal set
}

// BatchRunner executes one document's claim batches. Engine.EvaluateBatch
// is the default; sqlexec.Window satisfies the same surface to merge
// batches across concurrently-checked documents into shared passes.
type BatchRunner interface {
	EvaluateBatch(ctx context.Context, queries []sqlexec.Query, opts sqlexec.BatchOptions) []float64
}

// NewCubeEvaluator returns a merging evaluator over the engine.
func NewCubeEvaluator(e *sqlexec.Engine) *CubeEvaluator {
	return &CubeEvaluator{Engine: e, pool: make(map[string]map[string]bool)}
}

// SetPool installs the document-wide literal pool (column reference string
// → literals), replacing any accumulated literals for those columns.
func (c *CubeEvaluator) SetPool(pool map[string][]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for col, lits := range pool {
		set := make(map[string]bool, len(lits))
		for _, l := range lits {
			set[l] = true
		}
		c.pool[col] = set
	}
}

// snapshotPool folds the batch's literals into the accumulated pool and
// returns a sorted snapshot for the planner, restricted to the predicate
// columns the batch actually touches (the only pool entries the planner
// reads).
func (c *CubeEvaluator) snapshotPool(queries []sqlexec.Query) map[string][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	cols := make(map[string]bool)
	for _, q := range queries {
		for _, p := range q.Preds {
			col := p.Col.String()
			cols[col] = true
			set := c.pool[col]
			if set == nil {
				set = make(map[string]bool)
				c.pool[col] = set
			}
			set[p.Value] = true
		}
	}
	out := make(map[string][]string, len(cols))
	for col := range cols {
		set := c.pool[col]
		lits := make([]string, 0, len(set))
		for l := range set {
			lits = append(lits, l)
		}
		sort.Strings(lits)
		out[col] = lits
	}
	return out
}

// EvaluateBatch merges the batch into as few cube passes as the engine
// cache allows and answers every query. Cancellation is honored between
// and inside cube passes; see Engine.EvaluateBatch.
func (c *CubeEvaluator) EvaluateBatch(ctx context.Context, queries []sqlexec.Query) []float64 {
	opts := sqlexec.BatchOptions{Pool: c.snapshotPool(queries), Workers: c.Workers}
	if c.Runner != nil {
		return c.Runner.EvaluateBatch(ctx, queries, opts)
	}
	return c.Engine.EvaluateBatch(ctx, queries, opts)
}

// BeginDocument registers the document with a participant-tracking runner
// (sqlexec.Window counts active documents to decide when a pooled window
// is complete); EndDocument deregisters it. Both are no-ops on the direct
// engine path. The EM loop calls them structurally, like SetPool.
func (c *CubeEvaluator) BeginDocument() {
	if r, ok := c.Runner.(interface{ Join() }); ok {
		r.Join()
	}
}

// EndDocument ends the document's window participation; see BeginDocument.
func (c *CubeEvaluator) EndDocument() {
	if r, ok := c.Runner.(interface{ Leave() }); ok {
		r.Leave()
	}
}
