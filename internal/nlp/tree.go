package nlp

// PhraseTree is a deterministic, heuristic substitute for a dependency
// parse. The paper consults the Stanford parser for exactly one quantity:
// TreeDistance(word, claim), the number of edges between two tokens of the
// claim sentence, which Algorithm 2 inverts into keyword weights. We build a
// three-level segmentation instead —
//
//	sentence → clauses (';', ':', '—') → subclauses (',') → phrases
//	(introduced by prepositions and conjunctions) → token leaves
//
// — which preserves the property the weighting depends on: tokens sharing a
// phrase are nearer than tokens in sibling phrases, which are nearer than
// tokens across commas or clause boundaries. In the paper's running example
// ("three were for repeated substance abuse, one was for gambling") the tree
// places "gambling" strictly closer to "one" than to "three", matching the
// published weights.
type PhraseTree struct {
	tokens []Token
	// paths[i] = [clause, subclause, phrase] indices of token i.
	paths [][3]int
}

// phraseIntroducers start a new phrase node within a subclause.
var phraseIntroducers = map[string]bool{
	"of": true, "in": true, "on": true, "for": true, "with": true,
	"by": true, "from": true, "at": true, "than": true, "as": true,
	"per": true, "among": true, "across": true, "between": true,
	"during": true, "via": true, "versus": true, "and": true, "or": true,
	"but": true, "while": true, "which": true, "that": true, "who": true,
	"where": true, "when": true, "since": true, "because": true,
}

// clauseBreakers separate top-level clauses.
func isClauseBreaker(t Token) bool {
	if t.Kind != Punct {
		return false
	}
	switch t.Text {
	case ";", ":", "—", "–":
		return true
	}
	return false
}

// BuildPhraseTree segments tokens into the three-level tree.
func BuildPhraseTree(tokens []Token) *PhraseTree {
	pt := &PhraseTree{tokens: tokens, paths: make([][3]int, len(tokens))}
	clause, subclause, phrase := 0, 0, 0
	for i, t := range tokens {
		switch {
		case isClauseBreaker(t):
			clause++
			subclause, phrase = 0, 0
		case t.Kind == Punct && t.Text == ",":
			subclause++
			phrase = 0
		case t.Kind == Word && phraseIntroducers[t.Lower]:
			phrase++
		}
		pt.paths[i] = [3]int{clause, subclause, phrase}
	}
	return pt
}

// Distance returns the tree distance between tokens i and j: twice the
// number of levels below the lowest common ancestor (leaf-to-leaf edge
// count). Identical indices yield 0; same-phrase neighbours yield 2.
func (pt *PhraseTree) Distance(i, j int) int {
	if i == j {
		return 0
	}
	a, b := pt.paths[i], pt.paths[j]
	switch {
	case a[0] != b[0]:
		return 8
	case a[1] != b[1]:
		return 6
	case a[2] != b[2]:
		return 4
	default:
		return 2
	}
}

// Tokens returns the token slice the tree was built over.
func (pt *PhraseTree) Tokens() []Token { return pt.tokens }
