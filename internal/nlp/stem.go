package nlp

// Stem returns the Porter stem of a lowercased word. It implements the
// classic Porter (1980) algorithm, steps 1a through 5b. Inputs that are not
// plain ASCII lowercase words are returned unchanged except for safe suffix
// handling; the stemmer is only used for keyword normalization, so exact
// linguistic fidelity beyond Porter's rules is not required.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	b := []byte(word)
	for _, c := range b {
		if c < 'a' || c > 'z' {
			if c != '\'' && c != '-' {
				return word // non-ASCII or mixed token: leave untouched
			}
		}
	}
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

func isCons(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(b, i-1)
	default:
		return true
	}
}

// measure computes the Porter "measure" m of the stem b: the number of
// vowel-consonant sequences [C](VC)^m[V].
func measure(b []byte) int {
	n := 0
	i := 0
	// skip initial consonants
	for i < len(b) && isCons(b, i) {
		i++
	}
	for i < len(b) {
		// skip vowels
		for i < len(b) && !isCons(b, i) {
			i++
		}
		if i >= len(b) {
			break
		}
		n++
		for i < len(b) && isCons(b, i) {
			i++
		}
	}
	return n
}

func containsVowel(b []byte) bool {
	for i := range b {
		if !isCons(b, i) {
			return true
		}
	}
	return false
}

func endsDoubleCons(b []byte) bool {
	n := len(b)
	return n >= 2 && b[n-1] == b[n-2] && isCons(b, n-1)
}

// cvc reports whether b ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func cvc(b []byte) bool {
	n := len(b)
	if n < 3 {
		return false
	}
	if !isCons(b, n-3) || isCons(b, n-2) || !isCons(b, n-1) {
		return false
	}
	switch b[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	return string(b[len(b)-len(s):]) == s
}

// replaceIf replaces suffix old by new if the measure of the remaining stem
// satisfies cond. Returns the (possibly new) slice and whether old matched.
func replaceIf(b []byte, old, new string, cond func(stem []byte) bool) ([]byte, bool) {
	if !hasSuffix(b, old) {
		return b, false
	}
	stem := b[:len(b)-len(old)]
	if cond != nil && !cond(stem) {
		return b, true
	}
	out := make([]byte, 0, len(stem)+len(new))
	out = append(out, stem...)
	out = append(out, new...)
	return out, true
}

func mGreater(n int) func([]byte) bool {
	return func(stem []byte) bool { return measure(stem) > n }
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2]
	case hasSuffix(b, "ies"):
		return b[:len(b)-2]
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b[:len(b)-3]) > 0 {
			return b[:len(b)-1]
		}
		return b
	}
	matched := false
	if hasSuffix(b, "ed") && containsVowel(b[:len(b)-2]) {
		b = b[:len(b)-2]
		matched = true
	} else if hasSuffix(b, "ing") && containsVowel(b[:len(b)-3]) {
		b = b[:len(b)-3]
		matched = true
	}
	if !matched {
		return b
	}
	switch {
	case hasSuffix(b, "at"), hasSuffix(b, "bl"), hasSuffix(b, "iz"):
		return append(b, 'e')
	case endsDoubleCons(b):
		last := b[len(b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return b[:len(b)-1]
		}
	case measure(b) == 1 && cvc(b):
		return append(b, 'e')
	}
	return b
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && containsVowel(b[:len(b)-1]) {
		b = append(b[:len(b)-1], 'i')
	}
	return b
}

var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(b []byte) []byte {
	for _, r := range step2Rules {
		if nb, ok := replaceIf(b, r.old, r.new, mGreater(0)); ok {
			return nb
		}
	}
	return b
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, r := range step3Rules {
		if nb, ok := replaceIf(b, r.old, r.new, mGreater(0)); ok {
			return nb
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(b, s) {
			continue
		}
		stem := b[:len(b)-len(s)]
		if s == "ion" {
			break // handled below
		}
		if measure(stem) > 1 {
			return stem
		}
		return b
	}
	if hasSuffix(b, "ion") {
		stem := b[:len(b)-3]
		if len(stem) > 0 && (stem[len(stem)-1] == 's' || stem[len(stem)-1] == 't') && measure(stem) > 1 {
			return stem
		}
	}
	return b
}

func step5a(b []byte) []byte {
	if hasSuffix(b, "e") {
		stem := b[:len(b)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !cvc(stem)) {
			return stem
		}
	}
	return b
}

func step5b(b []byte) []byte {
	if measure(b) > 1 && endsDoubleCons(b) && b[len(b)-1] == 'l' {
		return b[:len(b)-1]
	}
	return b
}
