// Package nlp provides the natural-language substrate used by AggChecker:
// tokenization, sentence splitting, Porter stemming, stopword filtering,
// numeral parsing (digits and number words), and a deterministic heuristic
// phrase tree that substitutes for the Stanford dependency parser. The tree
// is consumed only through TreeDistance, which Algorithm 2 of the paper uses
// to weight claim keywords by proximity to the claimed number.
package nlp

import (
	"strings"
	"unicode"
)

// TokenKind classifies a token produced by Tokenize.
type TokenKind int

const (
	// Word is an alphabetic token (may contain internal apostrophes or
	// hyphens, e.g. "self-taught", "don't").
	Word TokenKind = iota
	// Number is a numeric token ("4", "1,234", "13.6", "41%").
	Number
	// Punct is a punctuation token significant for phrase segmentation.
	Punct
)

// Token is a single lexical unit of a sentence.
type Token struct {
	Text  string // original text
	Lower string // lowercased text
	Stem  string // Porter stem of Lower (words only; otherwise Lower)
	Kind  TokenKind
	Pos   int // token index within its sentence
}

// IsStop reports whether the token is a stopword.
func (t Token) IsStop() bool { return t.Kind == Word && stopwords[t.Lower] }

// Tokenize splits text into tokens. Words keep internal apostrophes and
// hyphens; numbers keep thousands separators, decimal points and a trailing
// percent sign; every other non-space rune becomes a Punct token.
func Tokenize(text string) []Token {
	var tokens []Token
	runes := []rune(text)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r):
			j := i + 1
			for j < len(runes) {
				rj := runes[j]
				if unicode.IsLetter(rj) || unicode.IsDigit(rj) {
					j++
					continue
				}
				// Internal apostrophe or hyphen joined on both sides by
				// letters stays inside the word ("o'clock", "self-taught").
				if (rj == '\'' || rj == '’' || rj == '-') && j+1 < len(runes) && unicode.IsLetter(runes[j+1]) {
					j += 2
					continue
				}
				break
			}
			text := string(runes[i:j])
			tokens = append(tokens, newToken(text, Word, len(tokens)))
			i = j
		case unicode.IsDigit(r):
			j := i + 1
			for j < len(runes) {
				rj := runes[j]
				if unicode.IsDigit(rj) {
					j++
					continue
				}
				// Thousands separator or decimal point surrounded by digits.
				if (rj == ',' || rj == '.') && j+1 < len(runes) && unicode.IsDigit(runes[j+1]) {
					j += 2
					continue
				}
				break
			}
			if j < len(runes) && runes[j] == '%' {
				j++
			}
			text := string(runes[i:j])
			tokens = append(tokens, newToken(text, Number, len(tokens)))
			i = j
		default:
			tokens = append(tokens, newToken(string(r), Punct, len(tokens)))
			i++
		}
	}
	return tokens
}

func newToken(text string, kind TokenKind, pos int) Token {
	lower := strings.ToLower(text)
	stem := lower
	if kind == Word {
		stem = Stem(lower)
	}
	return Token{Text: text, Lower: lower, Stem: stem, Kind: kind, Pos: pos}
}

// ContentWords returns the lowercased non-stopword word tokens of text.
func ContentWords(text string) []string {
	var out []string
	for _, t := range Tokenize(text) {
		if t.Kind == Word && !t.IsStop() {
			out = append(out, t.Lower)
		}
	}
	return out
}

// ContentStems returns the Porter stems of the non-stopword word tokens.
func ContentStems(text string) []string {
	var out []string
	for _, t := range Tokenize(text) {
		if t.Kind == Word && !t.IsStop() {
			out = append(out, t.Stem)
		}
	}
	return out
}
