package nlp

import (
	"strconv"
	"strings"
)

// ParsedNumber is a numeric mention extracted from text, normalized to a
// float value. Claims carry such a mention as their claimed query result.
type ParsedNumber struct {
	Value     float64
	IsPercent bool // written with % or followed by "percent"
	Text      string
}

// ParseNumericToken parses a Number token ("4", "1,234", "13.6", "41%").
func ParseNumericToken(text string) (ParsedNumber, bool) {
	pn := ParsedNumber{Text: text}
	s := text
	if strings.HasSuffix(s, "%") {
		pn.IsPercent = true
		s = s[:len(s)-1]
	}
	s = strings.ReplaceAll(s, ",", "")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return ParsedNumber{}, false
	}
	pn.Value = v
	return pn, true
}

var numberWords = map[string]float64{
	"zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
	"six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
	"eleven": 11, "twelve": 12, "thirteen": 13, "fourteen": 14,
	"fifteen": 15, "sixteen": 16, "seventeen": 17, "eighteen": 18,
	"nineteen": 19, "twenty": 20, "thirty": 30, "forty": 40, "fifty": 50,
	"sixty": 60, "seventy": 70, "eighty": 80, "ninety": 90,
	"hundred": 100, "thousand": 1000,
}

var magnitudeWords = map[string]float64{
	"hundred": 100, "thousand": 1e3, "million": 1e6, "billion": 1e9,
	"trillion": 1e12,
}

var ordinalWords = map[string]bool{
	"first": true, "second": true, "third": true, "fourth": true,
	"fifth": true, "sixth": true, "seventh": true, "eighth": true,
	"ninth": true, "tenth": true,
}

// NumberWordValue parses a spelled-out number word, including hyphenated
// tens-units compounds such as "twenty-one".
func NumberWordValue(word string) (float64, bool) {
	w := strings.ToLower(word)
	if v, ok := numberWords[w]; ok {
		return v, true
	}
	if tens, units, found := strings.Cut(w, "-"); found {
		tv, ok1 := numberWords[tens]
		uv, ok2 := numberWords[units]
		if ok1 && ok2 && tv >= 20 && tv <= 90 && uv >= 1 && uv <= 9 {
			return tv + uv, true
		}
	}
	return 0, false
}

// MagnitudeWord returns the multiplier of a magnitude word such as
// "million", used when combining "1.5 million" into a single value.
func MagnitudeWord(word string) (float64, bool) {
	v, ok := magnitudeWords[strings.ToLower(word)]
	return v, ok
}

// IsOrdinalWord reports whether word is a small ordinal ("first"…"tenth");
// ordinals are rarely claimed query results.
func IsOrdinalWord(word string) bool { return ordinalWords[strings.ToLower(word)] }

// IsOrdinalSuffix reports whether word is an ordinal suffix token that
// follows a digit run, as in "22nd" → ["22" "nd"].
func IsOrdinalSuffix(word string) bool {
	switch strings.ToLower(word) {
	case "st", "nd", "rd", "th":
		return true
	}
	return false
}

// LooksLikeYear reports whether v is plausibly a calendar year mention: a
// four-digit integer in [1800, 2100]. The claim detector skips such numbers
// unless they carry a percent sign.
func LooksLikeYear(v float64, text string) bool {
	if v != float64(int64(v)) {
		return false
	}
	if strings.Contains(text, ",") || strings.Contains(text, ".") || strings.Contains(text, "%") {
		return false
	}
	return v >= 1800 && v <= 2100 && len(text) == 4
}
