package nlp

// stopwords is the stopword list applied when extracting claim keywords and
// fragment keywords. It mirrors the common English IR stoplist (roughly the
// Lucene/Snowball default) plus a few corpus-specific function words. Number
// words are deliberately NOT stopwords: they carry claimed values.
var stopwords = map[string]bool{}

func init() {
	list := []string{
		"a", "an", "and", "are", "as", "at", "be", "been", "but", "by",
		"can", "could", "did", "do", "does", "for", "from", "had", "has",
		"have", "he", "her", "hers", "him", "his", "how", "i", "if", "in",
		"into", "is", "it", "its", "just", "may", "me", "might", "more",
		"most", "must", "my", "no", "nor", "not", "of", "on", "only",
		"or", "our", "ours", "out", "over", "own", "shall", "she", "should",
		"so", "some", "such", "than", "that", "the", "their", "theirs",
		"them", "then", "there", "these", "they", "this", "those", "through",
		"to", "too", "under", "up", "us", "was", "we", "were", "what",
		"when", "where", "which", "while", "who", "whom", "why", "will",
		"with", "would", "you", "your", "yours",
		// light verbs and discourse words frequent in news prose
		"also", "about", "according", "across", "after", "again", "against",
		"all", "among", "any", "because", "before", "being", "below",
		"between", "both", "down", "during", "each", "few", "further",
		"here", "itself", "now", "off", "once", "other", "same", "until",
		"very", "s", "t", "don", "yet", "per", "said", "says", "told",
	}
	for _, w := range list {
		stopwords[w] = true
	}
}

// IsStopword reports whether the lowercased word is on the stoplist.
func IsStopword(w string) bool { return stopwords[w] }
