package nlp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeWords(t *testing.T) {
	toks := Tokenize("There were only four previous lifetime bans in my database.")
	var words []string
	for _, tok := range toks {
		if tok.Kind == Word {
			words = append(words, tok.Lower)
		}
	}
	want := []string{"there", "were", "only", "four", "previous", "lifetime", "bans", "in", "my", "database"}
	if len(words) != len(want) {
		t.Fatalf("got %d words %v, want %d", len(words), words, len(want))
	}
	for i := range want {
		if words[i] != want[i] {
			t.Errorf("word %d = %q, want %q", i, words[i], want[i])
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		in   string
		text string
	}{
		{"There were 1,234 rows", "1,234"},
		{"roughly 13.6 games", "13.6"},
		{"about 41% of fliers", "41%"},
		{"only 4 bans", "4"},
	}
	for _, c := range cases {
		toks := Tokenize(c.in)
		found := false
		for _, tok := range toks {
			if tok.Kind == Number && tok.Text == c.text {
				found = true
			}
		}
		if !found {
			t.Errorf("Tokenize(%q): number token %q not found in %v", c.in, c.text, toks)
		}
	}
}

func TestTokenizeKeepsApostropheAndHyphen(t *testing.T) {
	toks := Tokenize("i'm self-taught")
	if len(toks) != 2 {
		t.Fatalf("got %d tokens %v, want 2", len(toks), toks)
	}
	if toks[0].Lower != "i'm" || toks[1].Lower != "self-taught" {
		t.Errorf("got %q %q", toks[0].Lower, toks[1].Lower)
	}
}

func TestPorterStem(t *testing.T) {
	cases := map[string]string{
		"caresses":    "caress",
		"ponies":      "poni",
		"ties":        "ti",
		"caress":      "caress",
		"cats":        "cat",
		"feed":        "feed",
		"agreed":      "agre",
		"plastered":   "plaster",
		"bled":        "bled",
		"motoring":    "motor",
		"sing":        "sing",
		"conflated":   "conflat",
		"troubled":    "troubl",
		"sized":       "size",
		"hopping":     "hop",
		"tanned":      "tan",
		"falling":     "fall",
		"hissing":     "hiss",
		"fizzed":      "fizz",
		"failing":     "fail",
		"filing":      "file",
		"happy":       "happi",
		"sky":         "sky",
		"relational":  "relat",
		"conditional": "condit",
		"rational":    "ration",
		"valenci":     "valenc",
		"hesitanci":   "hesit",
		"digitizer":   "digit",
		"suspensions": "suspens",
		"gambling":    "gambl",
		"categories":  "categori",
		"abuses":      "abus",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemStability(t *testing.T) {
	// Different inflections of the same lemma share a stem.
	groups := [][]string{
		{"suspension", "suspensions"},
		{"ban", "bans", "banned", "banning"},
		{"candidate", "candidates"},
		{"donation", "donations"},
	}
	for _, g := range groups {
		base := Stem(g[0])
		for _, w := range g[1:] {
			if Stem(w) != base {
				t.Errorf("Stem(%q)=%q != Stem(%q)=%q", w, Stem(w), g[0], base)
			}
		}
	}
}

func TestSplitSentences(t *testing.T) {
	text := "There were only four previous lifetime bans in my database - three were for repeated substance abuse, one was for gambling. The most recent was Mr. Smith. He returned in 2014!"
	got := SplitSentences(text)
	if len(got) != 3 {
		t.Fatalf("got %d sentences: %q", len(got), got)
	}
	if !strings.HasPrefix(got[1], "The most recent") {
		t.Errorf("sentence 1 = %q", got[1])
	}
	if !strings.HasSuffix(got[2], "2014!") {
		t.Errorf("sentence 2 = %q", got[2])
	}
}

func TestSplitSentencesAbbreviations(t *testing.T) {
	got := SplitSentences("Dr. Jones spoke. Approx. half agreed.")
	if len(got) != 2 {
		t.Fatalf("got %d sentences: %q", len(got), got)
	}
}

func TestParseNumericToken(t *testing.T) {
	cases := []struct {
		in      string
		val     float64
		percent bool
	}{
		{"4", 4, false},
		{"1,234", 1234, false},
		{"13.6", 13.6, false},
		{"41%", 41, true},
		{"0.5", 0.5, false},
	}
	for _, c := range cases {
		pn, ok := ParseNumericToken(c.in)
		if !ok {
			t.Fatalf("ParseNumericToken(%q) failed", c.in)
		}
		if pn.Value != c.val || pn.IsPercent != c.percent {
			t.Errorf("ParseNumericToken(%q) = %+v", c.in, pn)
		}
	}
	if _, ok := ParseNumericToken("abc"); ok {
		t.Error("ParseNumericToken accepted non-number")
	}
}

func TestNumberWordValue(t *testing.T) {
	cases := map[string]float64{
		"four": 4, "thirteen": 13, "twenty": 20, "twenty-one": 21,
		"ninety-nine": 99, "zero": 0, "Three": 3,
	}
	for in, want := range cases {
		got, ok := NumberWordValue(in)
		if !ok || got != want {
			t.Errorf("NumberWordValue(%q) = %v,%v want %v", in, got, ok, want)
		}
	}
	for _, w := range []string{"fourish", "one-hundred-two", "banana", ""} {
		if _, ok := NumberWordValue(w); ok {
			t.Errorf("NumberWordValue(%q) unexpectedly parsed", w)
		}
	}
}

func TestLooksLikeYear(t *testing.T) {
	if !LooksLikeYear(2014, "2014") {
		t.Error("2014 should look like a year")
	}
	if LooksLikeYear(2014, "2,014") {
		t.Error("2,014 should not look like a year")
	}
	if LooksLikeYear(41, "41") {
		t.Error("41 should not look like a year")
	}
	if LooksLikeYear(1999.5, "1999.5") {
		t.Error("decimal should not look like a year")
	}
}

func TestPhraseTreePaperExample(t *testing.T) {
	// "three were for repeated substance abuse, one was for gambling"
	toks := Tokenize("three were for repeated substance abuse, one was for gambling")
	pt := BuildPhraseTree(toks)
	idx := func(w string) int {
		for _, tok := range toks {
			if tok.Lower == w {
				return tok.Pos
			}
		}
		t.Fatalf("token %q not found", w)
		return -1
	}
	dOne := pt.Distance(idx("one"), idx("gambling"))
	dThree := pt.Distance(idx("three"), idx("gambling"))
	if dOne >= dThree {
		t.Errorf("gambling should be closer to 'one' (%d) than 'three' (%d)", dOne, dThree)
	}
	dSubst := pt.Distance(idx("three"), idx("substance"))
	dOneSubst := pt.Distance(idx("one"), idx("substance"))
	if dSubst >= dOneSubst {
		t.Errorf("substance should be closer to 'three' (%d) than 'one' (%d)", dSubst, dOneSubst)
	}
}

func TestPhraseTreeDistanceProperties(t *testing.T) {
	toks := Tokenize("the quick brown fox, which jumped over the lazy dog; it ran far away")
	pt := BuildPhraseTree(toks)
	f := func(i, j uint8) bool {
		a := int(i) % len(toks)
		b := int(j) % len(toks)
		d1 := pt.Distance(a, b)
		d2 := pt.Distance(b, a)
		if d1 != d2 {
			return false
		}
		if a == b && d1 != 0 {
			return false
		}
		if a != b && (d1 < 2 || d1 > 8) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStemProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	letters := "abcdefghijklmnopqrstuvwxyz"
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		w := sb.String()
		s := Stem(w)
		if len(s) == 0 {
			t.Fatalf("Stem(%q) is empty", w)
		}
		if len(s) > len(w)+1 {
			t.Fatalf("Stem(%q)=%q grew by more than one rune", w, s)
		}
	}
}

func TestContentWordsFiltersStopwords(t *testing.T) {
	got := ContentWords("The number of bans in the database")
	want := []string{"number", "bans", "database"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %q want %q", i, got[i], want[i])
		}
	}
}

func TestOrdinals(t *testing.T) {
	if !IsOrdinalWord("first") || IsOrdinalWord("firstly") {
		t.Error("ordinal word detection failed")
	}
	if !IsOrdinalSuffix("nd") || IsOrdinalSuffix("xx") {
		t.Error("ordinal suffix detection failed")
	}
	if m, ok := MagnitudeWord("million"); !ok || m != 1e6 {
		t.Error("magnitude word failed")
	}
}
