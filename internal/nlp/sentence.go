package nlp

import (
	"strings"
	"unicode"
)

// abbreviations that end with a period but do not terminate a sentence.
var abbreviations = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"sr": true, "jr": true, "st": true, "vs": true, "etc": true,
	"e.g": true, "i.e": true, "inc": true, "corp": true, "u.s": true,
	"no": true, "fig": true, "jan": true, "feb": true, "mar": true,
	"apr": true, "jun": true, "jul": true, "aug": true, "sep": true,
	"sept": true, "oct": true, "nov": true, "dec": true, "approx": true,
}

// SplitSentences splits a paragraph of plain text into sentences. The
// splitter is rule-based: a sentence ends at '.', '!' or '?' unless the
// period terminates a known abbreviation, a single initial, or a number
// (decimal points are consumed by the tokenizer, but "4." at end of list
// items is still guarded). Quotes and closing brackets after the terminator
// are attached to the finished sentence.
func SplitSentences(text string) []string {
	var sentences []string
	runes := []rune(text)
	start := 0
	i := 0
	for i < len(runes) {
		r := runes[i]
		if r == '.' || r == '!' || r == '?' {
			if r == '.' && isAbbreviationDot(runes, i) {
				i++
				continue
			}
			// Consume runs of terminators ("?!", "...") and trailing quotes.
			j := i + 1
			for j < len(runes) && (runes[j] == '.' || runes[j] == '!' || runes[j] == '?') {
				j++
			}
			for j < len(runes) && (runes[j] == '"' || runes[j] == '\'' || runes[j] == '”' || runes[j] == '’' || runes[j] == ')' || runes[j] == ']') {
				j++
			}
			s := strings.TrimSpace(string(runes[start:j]))
			if s != "" {
				sentences = append(sentences, s)
			}
			start = j
			i = j
			continue
		}
		i++
	}
	if tail := strings.TrimSpace(string(runes[start:])); tail != "" {
		sentences = append(sentences, tail)
	}
	return sentences
}

// isAbbreviationDot reports whether the period at runes[i] belongs to an
// abbreviation, an initial, or an intra-number dot rather than ending a
// sentence.
func isAbbreviationDot(runes []rune, i int) bool {
	// Dot between digits (defensive; ordinarily pre-tokenization text).
	if i > 0 && i+1 < len(runes) && unicode.IsDigit(runes[i-1]) && unicode.IsDigit(runes[i+1]) {
		return true
	}
	// Collect the word immediately before the dot.
	j := i - 1
	for j >= 0 && (unicode.IsLetter(runes[j]) || runes[j] == '.') {
		j--
	}
	word := strings.ToLower(string(runes[j+1 : i]))
	if word == "" {
		return false
	}
	if abbreviations[word] {
		return true
	}
	// Single capital initial, e.g. "John D. Smith".
	if len(word) == 1 && unicode.IsUpper(runes[i-1]) {
		return true
	}
	// If the next non-space rune is lowercase, the dot is unlikely to end a
	// sentence ("approx. half").
	k := i + 1
	for k < len(runes) && unicode.IsSpace(runes[k]) {
		k++
	}
	if k < len(runes) && unicode.IsLower(runes[k]) && k > i+1 {
		return true
	}
	return false
}
