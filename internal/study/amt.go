package study

import (
	"aggchecker/internal/metrics"
)

// AMTRow is one row of Table 11.
type AMTRow struct {
	Tool      string
	Scope     string
	Workers   int
	Confusion metrics.Confusion
}

// RunAMTStudy simulates the Mechanical Turk experiment (Appendix D): crowd
// workers verify a long article end to end (document scope) and, in a
// second round, a two-sentence excerpt over a small data set (paragraph
// scope), with the AggChecker versus a shared spreadsheet. Respondent
// counts mirror the paper's (19 and 13 for the document-scope conditions —
// not all tasks were picked up — and 50 each for paragraph scope).
func RunAMTStudy(docCase, paraCase *CaseInput, seed int64) []AMTRow {
	p := CrowdParams()
	rows := []AMTRow{
		{Tool: "AggChecker", Scope: "Document", Workers: 19},
		{Tool: "G-Sheet", Scope: "Document", Workers: 13},
		{Tool: "AggChecker", Scope: "Paragraph", Workers: 50},
		{Tool: "G-Sheet", Scope: "Paragraph", Workers: 50},
	}

	var sessions [][]*Session = make([][]*Session, 4)
	for w := 0; w < rows[0].Workers; w++ {
		sessions[0] = append(sessions[0],
			RunAggCheckerSession(docCase, p, w, 1500, seed+int64(w)))
	}
	for w := 0; w < rows[1].Workers; w++ {
		sessions[1] = append(sessions[1],
			RunSpreadsheetSession(docCase, p, w, 1500, false, seed+1000+int64(w)))
	}
	for w := 0; w < rows[2].Workers; w++ {
		sessions[2] = append(sessions[2],
			runScopedAggSession(paraCase, p, w, 240, seed+2000+int64(w)))
	}
	for w := 0; w < rows[3].Workers; w++ {
		sessions[3] = append(sessions[3],
			RunSpreadsheetSession(paraCase, p, w, 240, true, seed+3000+int64(w)))
	}
	for i := range rows {
		rows[i].Confusion = ConfusionOf(sessions[i])
	}
	return rows
}

// runScopedAggSession limits an AggChecker session to the error-bearing
// paragraph's claims (the paragraph excerpt).
func runScopedAggSession(in *CaseInput, p Params, user int, budget float64, seed int64) *Session {
	start, end := ParagraphScopeOf(in)
	s := RunAggCheckerSession(in, p, user, budget, seed)
	scoped := &Session{
		User: s.User, Case: s.Case, Tool: s.Tool,
		Budget: s.Budget, Elapsed: s.Elapsed, ScopeStart: start, ScopeEnd: end,
	}
	for _, e := range s.Events {
		if e.ClaimIdx >= start && e.ClaimIdx < end {
			scoped.Events = append(scoped.Events, e)
		}
	}
	return scoped
}
