package study

import (
	"testing"

	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
)

var cachedInputs []*CaseInput

func studyInputs(t *testing.T) []*CaseInput {
	t.Helper()
	if cachedInputs != nil {
		return cachedInputs
	}
	c := corpus.MustLoad()
	cfg := core.DefaultConfig()
	cfg.Model.EvalBudget = 400
	cfg.Model.MaxEMIters = 3
	cachedInputs = PrepareInputs(c.StudyCases(), cfg)
	return cachedInputs
}

func TestOnsiteStudySpeedup(t *testing.T) {
	inputs := studyInputs(t)
	res := RunOnsiteStudy(inputs, 8, 7)
	speedup := res.Speedup()
	// The paper reports ≈6×; the shape requirement is a large multiple.
	if speedup < 3 {
		t.Errorf("AggChecker speedup = %.1fx, want >= 3x", speedup)
	}
	t.Logf("speedup = %.1fx", speedup)
}

func TestOnsiteStudyToolQuality(t *testing.T) {
	inputs := studyInputs(t)
	res := RunOnsiteStudy(inputs, 8, 7)
	agg, sql := res.ToolConfusions()
	if agg.Recall() <= sql.Recall() {
		t.Errorf("AggChecker recall %.2f should beat SQL recall %.2f", agg.Recall(), sql.Recall())
	}
	if agg.F1() <= sql.F1() {
		t.Errorf("AggChecker F1 %.2f should beat SQL F1 %.2f", agg.F1(), sql.F1())
	}
	if agg.Recall() < 0.8 {
		t.Errorf("AggChecker user recall = %.2f, want near-perfect (paper: 100%%)", agg.Recall())
	}
}

func TestFeatureShares(t *testing.T) {
	inputs := studyInputs(t)
	res := RunOnsiteStudy(inputs, 8, 7)
	shares := res.FeatureShares()
	var total float64
	for _, v := range shares {
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("feature shares sum to %v", total)
	}
	// Top-1 should dominate, as in Table 3 (44.5% top-1, 38.1% top-5).
	if shares[ActionTop1] < shares[ActionTop10] {
		t.Errorf("top-1 share %.2f should exceed top-10 share %.2f",
			shares[ActionTop1], shares[ActionTop10])
	}
}

func TestVerifiedSeriesMonotone(t *testing.T) {
	inputs := studyInputs(t)
	res := RunOnsiteStudy(inputs, 8, 7)
	for a := range inputs {
		for _, tool := range []string{"aggchecker", "sql"} {
			series := res.VerifiedSeries(a, tool, 20)
			for i := 1; i < len(series); i++ {
				if series[i] < series[i-1] {
					t.Fatalf("article %d %s: series not monotone: %v", a, tool, series)
				}
			}
		}
	}
	// AggChecker curves should dominate SQL curves at the end of the
	// session for most articles (Figure 6).
	wins := 0
	for a := range inputs {
		agg := res.VerifiedSeries(a, "aggchecker", 20)
		sql := res.VerifiedSeries(a, "sql", 20)
		if agg[len(agg)-1] > sql[len(sql)-1] {
			wins++
		}
	}
	if wins < len(inputs)-1 {
		t.Errorf("AggChecker should out-verify SQL on nearly all articles, won %d/%d", wins, len(inputs))
	}
}

func TestSessionDeterminism(t *testing.T) {
	inputs := studyInputs(t)
	a := RunAggCheckerSession(inputs[0], ExpertParams(), 0, 300, 99)
	b := RunAggCheckerSession(inputs[0], ExpertParams(), 0, 300, 99)
	if len(a.Events) != len(b.Events) || a.Elapsed != b.Elapsed {
		t.Error("same seed produced different sessions")
	}
}

func TestBudgetEnforced(t *testing.T) {
	inputs := studyInputs(t)
	s := RunSQLSession(inputs[0], ExpertParams(), 0, 60, 5)
	if s.Elapsed > 60 {
		t.Errorf("elapsed %v exceeds budget", s.Elapsed)
	}
	for _, e := range s.Events {
		if e.EndTime > 60 {
			t.Errorf("event at %v past budget", e.EndTime)
		}
	}
}

func TestAMTStudyShape(t *testing.T) {
	inputs := studyInputs(t)
	// Document scope: a long article; paragraph scope: the NFL case.
	var docCase, paraCase *CaseInput
	for _, in := range inputs {
		if len(in.Case.Truth) > 15 && docCase == nil {
			docCase = in
		}
		if in.Case.Name == "nfl-suspensions" {
			paraCase = in
		}
	}
	if docCase == nil || paraCase == nil {
		t.Fatal("study cases missing")
	}
	rows := RunAMTStudy(docCase, paraCase, 11)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]AMTRow{}
	for _, r := range rows {
		byKey[r.Tool+"/"+r.Scope] = r
	}
	// Table 11's shape: G-Sheet recall ≈ 0 at document scope; AggChecker
	// beats G-Sheet at both scopes; paragraph scope improves both tools.
	if g := byKey["G-Sheet/Document"].Confusion.Recall(); g > 0.1 {
		t.Errorf("G-Sheet document recall = %.2f, want ≈ 0", g)
	}
	aggDoc := byKey["AggChecker/Document"].Confusion
	aggPara := byKey["AggChecker/Paragraph"].Confusion
	gPara := byKey["G-Sheet/Paragraph"].Confusion
	if aggDoc.Recall() <= byKey["G-Sheet/Document"].Confusion.Recall() {
		t.Error("AggChecker should beat G-Sheet at document scope")
	}
	if aggPara.F1() <= gPara.F1() {
		t.Errorf("AggChecker paragraph F1 %.2f should beat G-Sheet %.2f", aggPara.F1(), gPara.F1())
	}
}

func TestSurveyCounts(t *testing.T) {
	inputs := studyInputs(t)
	res := RunOnsiteStudy(inputs, 8, 7)
	counts := res.SurveyCounts()
	for _, crit := range []string{"Overall", "Learning", "Correct Claims", "Incorrect Claims"} {
		row, ok := counts[crit]
		if !ok {
			t.Fatalf("criterion %s missing", crit)
		}
		total := 0
		for _, v := range row {
			total += v
		}
		if total != 8 {
			t.Errorf("%s: %d responses, want 8", crit, total)
		}
		// Preference mass should sit on the AggChecker side (paper: no SQL
		// preferences at all).
		if row[0]+row[1] > row[3]+row[4] {
			t.Errorf("%s: SQL-side preferences dominate: %v", crit, row)
		}
	}
}
