// Package study simulates the paper's user studies (§7.2, Appendix A and
// D) with seeded behavioural models. The paper attributes the measured
// speedups to top-k coverage — 82.6% of claims resolved within two clicks —
// so the simulation derives verification times from the checker's actual
// per-claim ranks plus per-action costs calibrated to the paper's reported
// per-claim times. Three user populations are modeled: on-site experts with
// the AggChecker interface, the same experts writing SQL, and AMT crowd
// workers (AggChecker vs. spreadsheet, document vs. paragraph scope).
package study

import (
	"context"
	"math/rand"

	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
	"aggchecker/internal/metrics"
)

// Action is how a user resolved one claim in the AggChecker interface
// (Table 3's columns).
type Action int

const (
	ActionTop1 Action = iota
	ActionTop5
	ActionTop10
	ActionCustom
	ActionSkip
)

func (a Action) String() string {
	switch a {
	case ActionTop1:
		return "Top-1"
	case ActionTop5:
		return "Top-5"
	case ActionTop10:
		return "Top-10"
	case ActionCustom:
		return "Custom"
	}
	return "Skip"
}

// ClaimEvent is one claim handled during a session.
type ClaimEvent struct {
	ClaimIdx int
	EndTime  float64 // seconds since session start when the claim finished
	Verified bool    // the right query was identified
	Flagged  bool    // the user marked the claim erroneous
	Action   Action
}

// Session is one user × article × tool run.
type Session struct {
	User    int
	Case    *corpus.TestCase
	Tool    string // "aggchecker", "sql", "gsheet"
	Budget  float64
	Events  []ClaimEvent
	Elapsed float64
	// ScopeStart/ScopeEnd limit scoring to the claim index range
	// [ScopeStart, ScopeEnd) — the AMT paragraph-scope conditions use the
	// error-bearing paragraph's claims. Both zero means the whole article.
	ScopeStart, ScopeEnd int
}

// VerifiedAt returns the number of correctly verified claims at time t.
func (s *Session) VerifiedAt(t float64) int {
	n := 0
	for _, e := range s.Events {
		if e.Verified && e.EndTime <= t {
			n++
		}
	}
	return n
}

// Verified returns the total correctly verified claims.
func (s *Session) Verified() int { return s.VerifiedAt(s.Budget + 1) }

// Throughput returns correctly verified claims per minute.
func (s *Session) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Verified()) / (s.Elapsed / 60)
}

// CaseInput bundles the checker's output for one study article.
type CaseInput struct {
	Case  *corpus.TestCase
	Ranks []int // ground-truth rank per claim (-1 = absent)
	// Tentative per-claim system verdicts (erroneous markup).
	SystemFlag []bool
}

// PrepareInputs runs the checker over the study cases once; all simulated
// users share the same system output, as in the real study.
func PrepareInputs(cases []*corpus.TestCase, cfg core.Config) []*CaseInput {
	var out []*CaseInput
	for _, tc := range cases {
		checker := core.NewChecker(tc.DB, cfg)
		report, err := checker.Check(context.Background(), tc.Doc)
		if err != nil {
			// Unreachable with a background context; guard anyway.
			panic(err)
		}
		in := &CaseInput{Case: tc}
		for ci, cr := range report.Claims() {
			in.Ranks = append(in.Ranks, core.RankOf(cr, tc.Truth[ci].Query))
			in.SystemFlag = append(in.SystemFlag, cr.Erroneous)
		}
		out = append(out, in)
	}
	return out
}

// Params tunes a user population.
type Params struct {
	ReadMin, ReadMax     float64 // seconds to read a claim in context
	Top1Min, Top1Max     float64 // accept the top suggestion
	Top5Min, Top5Max     float64 // scan and pick within top-5
	Top10Min, Top10Max   float64 // open and pick within top-10
	CustomMin, CustomMax float64 // assemble a query from fragments
	CustomSuccess        float64 // probability the assembly succeeds
	Slip                 float64 // probability of misreading a verdict
	SQLMin, SQLMax       float64 // compose one SQL query
	SQLPerPred           float64 // extra seconds per predicate
	SQLSuccess           float64 // base probability the SQL is right
}

// ExpertParams models the on-site study participants (CS majors after a
// six-minute tutorial).
func ExpertParams() Params {
	return Params{
		ReadMin: 4, ReadMax: 9,
		Top1Min: 2, Top1Max: 5,
		Top5Min: 6, Top5Max: 12,
		Top10Min: 12, Top10Max: 22,
		CustomMin: 30, CustomMax: 70,
		CustomSuccess: 0.85,
		Slip:          0.03,
		SQLMin:        55, SQLMax: 95,
		SQLPerPred: 22,
		SQLSuccess: 0.9,
	}
}

// CrowdParams models AMT workers without IT background: slower, higher
// slip, lower custom-query success.
func CrowdParams() Params {
	return Params{
		ReadMin: 7, ReadMax: 16,
		Top1Min: 3, Top1Max: 8,
		Top5Min: 9, Top5Max: 20,
		Top10Min: 16, Top10Max: 30,
		CustomMin: 45, CustomMax: 110,
		CustomSuccess: 0.45,
		Slip:          0.1,
		SQLMin:        120, SQLMax: 240,
		SQLPerPred: 45,
		SQLSuccess: 0.25,
	}
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// RunAggCheckerSession simulates one user verifying an article through the
// AggChecker interface within a time budget.
func RunAggCheckerSession(in *CaseInput, p Params, user int, budget float64, seed int64) *Session {
	rng := rand.New(rand.NewSource(seed))
	s := &Session{User: user, Case: in.Case, Tool: "aggchecker", Budget: budget}
	t := 0.0
	for ci := range in.Case.Truth {
		if t >= budget {
			break
		}
		t += uniform(rng, p.ReadMin, p.ReadMax)
		rank := in.Ranks[ci]
		var action Action
		var verified bool
		switch {
		case rank == 0:
			t += uniform(rng, p.Top1Min, p.Top1Max)
			action, verified = ActionTop1, true
		case rank > 0 && rank < 5:
			t += uniform(rng, p.Top5Min, p.Top5Max)
			action, verified = ActionTop5, true
		case rank >= 5 && rank < 10:
			t += uniform(rng, p.Top10Min, p.Top10Max)
			action, verified = ActionTop10, true
		default:
			t += uniform(rng, p.CustomMin, p.CustomMax)
			action = ActionCustom
			verified = rng.Float64() < p.CustomSuccess
		}
		if t > budget {
			// Ran out of time mid-claim.
			s.Elapsed = budget
			return s
		}
		truth := in.Case.Truth[ci]
		var flagged bool
		if verified {
			// The user sees the right query's result next to the claim.
			flagged = !truth.Correct
		} else {
			// Fall back to the system's tentative markup.
			flagged = in.SystemFlag[ci]
		}
		if rng.Float64() < p.Slip {
			flagged = !flagged
		}
		s.Events = append(s.Events, ClaimEvent{
			ClaimIdx: ci, EndTime: t, Verified: verified, Flagged: flagged, Action: action,
		})
	}
	s.Elapsed = t
	if s.Elapsed > budget {
		s.Elapsed = budget
	}
	return s
}

// RunSQLSession simulates the same verification through a generic SQL
// console: the user writes one query per claim from scratch.
func RunSQLSession(in *CaseInput, p Params, user int, budget float64, seed int64) *Session {
	rng := rand.New(rand.NewSource(seed))
	s := &Session{User: user, Case: in.Case, Tool: "sql", Budget: budget}
	t := 0.0
	for ci, truth := range in.Case.Truth {
		if t >= budget {
			break
		}
		t += uniform(rng, p.ReadMin, p.ReadMax)
		npreds := len(truth.Query.Preds)
		t += uniform(rng, p.SQLMin, p.SQLMax) + p.SQLPerPred*float64(npreds)
		if t > budget {
			s.Elapsed = budget
			return s
		}
		// Success decays with query complexity and non-count aggregates.
		success := p.SQLSuccess - 0.13*float64(npreds)
		if truth.Query.Agg.String() != "Count" {
			success -= 0.12
		}
		verified := rng.Float64() < success
		var flagged bool
		if verified {
			flagged = !truth.Correct
		} else {
			// A wrong query misleads: occasionally flags a correct claim.
			flagged = rng.Float64() < 0.15
		}
		if rng.Float64() < p.Slip {
			flagged = !flagged
		}
		s.Events = append(s.Events, ClaimEvent{
			ClaimIdx: ci, EndTime: t, Verified: verified, Flagged: flagged, Action: ActionCustom,
		})
	}
	s.Elapsed = t
	if s.Elapsed > budget {
		s.Elapsed = budget
	}
	return s
}

// RunSpreadsheetSession simulates a crowd worker verifying claims with a
// shared spreadsheet (Table 11's G-Sheet condition). Verification succeeds
// only for claims a worker can resolve by filtering and counting by hand;
// documentScope workers face the whole article, paragraph-scope workers two
// sentences of a deliberately small data set.
func RunSpreadsheetSession(in *CaseInput, p Params, user int, budget float64, paragraphScope bool, seed int64) *Session {
	rng := rand.New(rand.NewSource(seed))
	s := &Session{User: user, Case: in.Case, Tool: "gsheet", Budget: budget}
	t := 0.0
	start, end := 0, len(in.Case.Truth)
	if paragraphScope {
		start, end = ParagraphScopeOf(in)
		s.ScopeStart, s.ScopeEnd = start, end
	}
	for ci := start; ci < end; ci++ {
		truth := in.Case.Truth[ci]
		if t >= budget {
			break
		}
		base := uniform(rng, p.SQLMin, p.SQLMax)
		if paragraphScope {
			base *= 0.4 // narrow task, small data
		}
		t += uniform(rng, p.ReadMin, p.ReadMax) + base + p.SQLPerPred*float64(len(truth.Query.Preds))
		if t > budget {
			s.Elapsed = budget
			return s
		}
		// Hand-verifiable: counting claims with few predicates.
		success := 0.05
		if truth.Query.Agg.String() == "Count" && len(truth.Query.Preds) <= 2 {
			if paragraphScope {
				success = 0.55
			} else {
				success = 0.15
			}
		}
		verified := rng.Float64() < success
		flagged := false
		if verified {
			flagged = !truth.Correct
			if rng.Float64() < p.Slip {
				flagged = !flagged
			}
		}
		s.Events = append(s.Events, ClaimEvent{
			ClaimIdx: ci, EndTime: t, Verified: verified, Flagged: flagged, Action: ActionCustom,
		})
	}
	s.Elapsed = t
	if s.Elapsed > budget {
		s.Elapsed = budget
	}
	return s
}

// ConfusionOf scores a set of sessions against ground truth (Table 4 and
// Table 11 metrics): every claim the user examined counts, with flagged
// claims as positives. Claims never reached within the budget count as
// unflagged (missed errors reduce recall, as in the paper's time-limited
// protocol).
func ConfusionOf(sessions []*Session) metrics.Confusion {
	var conf metrics.Confusion
	for _, s := range sessions {
		handled := make(map[int]bool)
		for _, e := range s.Events {
			handled[e.ClaimIdx] = true
			conf.Add(e.Flagged, !s.Case.Truth[e.ClaimIdx].Correct)
		}
		start, end := 0, len(s.Case.Truth)
		if s.ScopeEnd > 0 {
			start, end = s.ScopeStart, s.ScopeEnd
		}
		for ci := start; ci < end; ci++ {
			if !handled[ci] {
				conf.Add(false, !s.Case.Truth[ci].Correct)
			}
		}
	}
	return conf
}

// BudgetFor returns the study time budget for an article: 20 minutes for
// the long articles (>15 claims), 5 minutes otherwise (§7.2).
func BudgetFor(tc *corpus.TestCase) float64 {
	if len(tc.Truth) > 15 {
		return 1200
	}
	return 300
}

// ParagraphScopeOf returns the claim index range [start, end) of the first
// paragraph containing an erroneous claim — the excerpt the paper assigned
// to paragraph-scope crowd workers (it must be checkable by hand).
func ParagraphScopeOf(in *CaseInput) (int, int) {
	claims := in.Case.Doc.Claims
	truth := in.Case.Truth
	for i := range claims {
		if truth[i].Correct {
			continue
		}
		para := claims[i].Sentence.Paragraph
		start := i
		for start > 0 && claims[start-1].Sentence.Paragraph == para {
			start--
		}
		end := i + 1
		for end < len(claims) && claims[end].Sentence.Paragraph == para {
			end++
		}
		return start, end
	}
	// No erroneous claim: fall back to the first two claims.
	if len(claims) > 2 {
		return 0, 2
	}
	return 0, len(claims)
}
