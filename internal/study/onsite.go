package study

import (
	"aggchecker/internal/metrics"
)

// OnsiteResult is the simulated §7.2 study: eight users, six articles,
// alternating tools, time budgets per article length.
type OnsiteResult struct {
	Inputs      []*CaseInput
	AggSessions []*Session
	SQLSessions []*Session
	Users       int
}

// RunOnsiteStudy alternates tools across the user × article grid exactly as
// the paper describes (no user verifies the same document twice; each
// article is verified by both tools).
func RunOnsiteStudy(inputs []*CaseInput, users int, seed int64) *OnsiteResult {
	res := &OnsiteResult{Inputs: inputs, Users: users}
	p := ExpertParams()
	for u := 0; u < users; u++ {
		for a, in := range inputs {
			budget := BudgetFor(in.Case)
			sessionSeed := seed + int64(u*1000+a)
			if (u+a)%2 == 0 {
				res.AggSessions = append(res.AggSessions,
					RunAggCheckerSession(in, p, u, budget, sessionSeed))
			} else {
				res.SQLSessions = append(res.SQLSessions,
					RunSQLSession(in, p, u, budget, sessionSeed))
			}
		}
	}
	return res
}

// FeatureShares computes Table 3: the fraction of verified claims resolved
// through each interface feature.
func (r *OnsiteResult) FeatureShares() map[Action]float64 {
	counts := map[Action]int{}
	total := 0
	for _, s := range r.AggSessions {
		for _, e := range s.Events {
			if !e.Verified {
				continue
			}
			counts[e.Action]++
			total++
		}
	}
	out := map[Action]float64{}
	if total == 0 {
		return out
	}
	for a, c := range counts {
		out[a] = float64(c) / float64(total)
	}
	return out
}

// ToolConfusions computes Table 4: user-level recall/precision/F1 per tool.
func (r *OnsiteResult) ToolConfusions() (agg, sql metrics.Confusion) {
	return ConfusionOf(r.AggSessions), ConfusionOf(r.SQLSessions)
}

// throughputOf averages sessions' claims-per-minute.
func throughputOf(sessions []*Session) float64 {
	if len(sessions) == 0 {
		return 0
	}
	var t float64
	for _, s := range sessions {
		t += s.Throughput()
	}
	return t / float64(len(sessions))
}

// UserThroughputs returns per-user (aggchecker, sql) claims-per-minute
// pairs (Figure 7, left).
func (r *OnsiteResult) UserThroughputs() [][2]float64 {
	out := make([][2]float64, r.Users)
	for u := 0; u < r.Users; u++ {
		var agg, sql []*Session
		for _, s := range r.AggSessions {
			if s.User == u {
				agg = append(agg, s)
			}
		}
		for _, s := range r.SQLSessions {
			if s.User == u {
				sql = append(sql, s)
			}
		}
		out[u] = [2]float64{throughputOf(agg), throughputOf(sql)}
	}
	return out
}

// ArticleThroughputs returns per-article pairs (Figure 7, right).
func (r *OnsiteResult) ArticleThroughputs() [][2]float64 {
	out := make([][2]float64, len(r.Inputs))
	for a, in := range r.Inputs {
		var agg, sql []*Session
		for _, s := range r.AggSessions {
			if s.Case == in.Case {
				agg = append(agg, s)
			}
		}
		for _, s := range r.SQLSessions {
			if s.Case == in.Case {
				sql = append(sql, s)
			}
		}
		out[a] = [2]float64{throughputOf(agg), throughputOf(sql)}
	}
	return out
}

// Speedup is the mean AggChecker/SQL throughput ratio across users with
// both tools (the paper's headline ≈6×).
func (r *OnsiteResult) Speedup() float64 {
	pairs := r.UserThroughputs()
	var total float64
	n := 0
	for _, p := range pairs {
		if p[1] > 0 {
			total += p[0] / p[1]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// VerifiedSeries samples the average cumulative verified-claims curve of an
// article for one tool at the given number of grid points (Figure 6).
func (r *OnsiteResult) VerifiedSeries(article int, tool string, points int) []float64 {
	in := r.Inputs[article]
	budget := BudgetFor(in.Case)
	var sessions []*Session
	pool := r.AggSessions
	if tool == "sql" {
		pool = r.SQLSessions
	}
	for _, s := range pool {
		if s.Case == in.Case {
			sessions = append(sessions, s)
		}
	}
	out := make([]float64, points+1)
	if len(sessions) == 0 {
		return out
	}
	for i := 0; i <= points; i++ {
		t := budget * float64(i) / float64(points)
		var sum float64
		for _, s := range sessions {
			sum += float64(s.VerifiedAt(t))
		}
		out[i] = sum / float64(len(sessions))
	}
	return out
}

// SurveyCounts derives Table 8: per-criterion preference counts on the
// five-point scale [SQL++, SQL+, SQL≈AC, AC+, AC++]. Preferences follow
// each simulated user's own outcomes: overall from the throughput ratio,
// learning from interface complexity (queries composed per verified claim),
// and the claim-type rows from per-type verification success.
func (r *OnsiteResult) SurveyCounts() map[string][5]int {
	out := map[string][5]int{}
	users := r.UserThroughputs()
	bucket := func(ratio float64) int {
		switch {
		case ratio < 0.75:
			return 0
		case ratio < 1.25:
			return 2
		case ratio < 3.5:
			return 3
		default:
			return 4
		}
	}
	var overall, learning, correct, incorrect [5]int
	for u, p := range users {
		ratio := 99.0
		if p[1] > 0 {
			ratio = p[0] / p[1]
		}
		overall[bucket(ratio)]++
		// Learning: SQL requires query authoring for every claim, the
		// interface needs clicks; model as an even stronger preference.
		learning[bucket(ratio*1.4)]++
		// Per claim type: ratio of verified correct/incorrect claims.
		cAgg, cSQL, iAgg, iSQL := r.typeVerified(u)
		correct[bucket(safeRatio(cAgg, cSQL))]++
		incorrect[bucket(safeRatio(iAgg, iSQL))]++
	}
	out["Overall"] = overall
	out["Learning"] = learning
	out["Correct Claims"] = correct
	out["Incorrect Claims"] = incorrect
	return out
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 99
	}
	return a / b
}

// typeVerified counts a user's verified claims split by ground-truth
// correctness for each tool.
func (r *OnsiteResult) typeVerified(user int) (cAgg, cSQL, iAgg, iSQL float64) {
	count := func(sessions []*Session, correct bool) float64 {
		var n float64
		for _, s := range sessions {
			if s.User != user {
				continue
			}
			for _, e := range s.Events {
				if e.Verified && s.Case.Truth[e.ClaimIdx].Correct == correct {
					n++
				}
			}
		}
		return n
	}
	return count(r.AggSessions, true), count(r.SQLSessions, true),
		count(r.AggSessions, false), count(r.SQLSessions, false)
}
