package shard_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aggchecker/internal/db"
	"aggchecker/internal/shard"
	"aggchecker/internal/sqlexec"
)

// buildSource builds the canonical test fact table: a shard key with NULLs,
// an integer-valued measure with NULLs (so float sums regroup exactly), and
// a low-cardinality distinct column.
func buildSource(t *testing.T, rows int) *db.Database {
	t.Helper()
	cat := db.NewStringColumn("cat")
	val := db.NewFloatColumn("val")
	tag := db.NewStringColumn("tag")
	cats := []string{"red", "green", "blue"}
	for i := 0; i < rows; i++ {
		if i%7 == 3 {
			cat.AppendString("") // NULL shard key: round-robin fallback
		} else {
			cat.AppendString(cats[i%3])
		}
		if i%5 == 2 {
			val.AppendFloat(math.NaN())
		} else {
			val.AppendFloat(float64(i % 13))
		}
		tag.AppendString([]string{"x", "y", "z", "w"}[i%4])
	}
	d := db.NewDatabase("src")
	d.MustAddTable(db.MustNewTable("fact", cat, val, tag))
	return d
}

func testQueries() []sqlexec.Query {
	fcat := sqlexec.ColumnRef{Table: "fact", Column: "cat"}
	fval := sqlexec.ColumnRef{Table: "fact", Column: "val"}
	ftag := sqlexec.ColumnRef{Table: "fact", Column: "tag"}
	var qs []sqlexec.Query
	for _, lit := range []string{"red", "green", "blue"} {
		p := []sqlexec.Predicate{{Col: fcat, Value: lit}}
		qs = append(qs,
			sqlexec.Query{Agg: sqlexec.Count, Preds: p},
			sqlexec.Query{Agg: sqlexec.Sum, AggCol: fval, Preds: p},
			sqlexec.Query{Agg: sqlexec.Avg, AggCol: fval, Preds: p},
			sqlexec.Query{Agg: sqlexec.Min, AggCol: fval, Preds: p},
			sqlexec.Query{Agg: sqlexec.Max, AggCol: fval, Preds: p},
			sqlexec.Query{Agg: sqlexec.CountDistinct, AggCol: ftag, Preds: p},
			sqlexec.Query{Agg: sqlexec.Percentage, Preds: p},
			sqlexec.Query{Agg: sqlexec.ConditionalProbability, Preds: p},
		)
	}
	return append(qs,
		sqlexec.Query{Agg: sqlexec.Count},
		sqlexec.Query{Agg: sqlexec.CountDistinct, AggCol: ftag})
}

// shardedFixture carves the source into k hash partitions with in-process
// workers plus an unsharded reference engine over the same rows.
func shardedFixture(t *testing.T, rows, k int) (*shard.Coordinator, *sqlexec.Engine) {
	t.Helper()
	src := buildSource(t, rows)
	s, err := db.NewSharder(src, k, db.ShardOptions{Keys: map[string]string{"fact": "cat"}})
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]shard.Worker, 0, k)
	for _, p := range s.Partitions() {
		workers = append(workers, &shard.LocalWorker{Engine: sqlexec.NewEngine(p)})
	}
	front := sqlexec.NewEngine(src)
	return shard.NewCoordinator(workers, &front.Stats), front
}

func TestCoordinatorCubeMatchesUnsharded(t *testing.T) {
	coord, front := shardedFixture(t, 3000, 4)
	ctx := context.Background()
	req := sqlexec.CubeRequest{
		Tables: []string{"fact"},
		Dims: []sqlexec.DimSpec{{
			Col:      sqlexec.ColumnRef{Table: "fact", Column: "cat"},
			Literals: []string{"red", "green", "blue"},
		}},
		Reqs: []sqlexec.AggRequest{
			{Fn: sqlexec.Count},
			{Fn: sqlexec.Sum, Col: sqlexec.ColumnRef{Table: "fact", Column: "val"}},
			{Fn: sqlexec.Min, Col: sqlexec.ColumnRef{Table: "fact", Column: "val"}},
			{Fn: sqlexec.Max, Col: sqlexec.ColumnRef{Table: "fact", Column: "val"}},
			{Fn: sqlexec.CountDistinct, Col: sqlexec.ColumnRef{Table: "fact", Column: "tag"}},
		},
	}
	merged, err := coord.Cube(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := front.CubeForContext(ctx, req.Tables, req.Dims, req.Reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range testQueries() {
		wv, wok := want.Value(q)
		gv, gok := merged.Value(q)
		if wok != gok {
			t.Fatalf("%s: coverage mismatch (unsharded %v, sharded %v)", q.Key(), wok, gok)
		}
		if wok && math.Float64bits(wv) != math.Float64bits(gv) {
			t.Errorf("%s: unsharded %v, sharded %v", q.Key(), wv, gv)
		}
	}
	snap := front.Stats.Snapshot()
	if snap["shard_fanouts"] != 1 || snap["shard_partials"] != 4 {
		t.Fatalf("fanouts=%d partials=%d, want 1 and 4", snap["shard_fanouts"], snap["shard_partials"])
	}
	if snap["shard_merge_ns"] <= 0 {
		t.Fatal("merge time not recorded")
	}
}

func TestCoordinatorEvaluateMatchesDirect(t *testing.T) {
	coord, front := shardedFixture(t, 2200, 3)
	ctx := context.Background()
	for _, q := range testQueries() {
		got, err := coord.Evaluate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := front.EvaluateContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: unsharded %v, sharded %v", q.Key(), want, got)
		}
	}
}

func TestEvaluatorMatchesEngineBatch(t *testing.T) {
	for _, naive := range []bool{false, true} {
		coord, front := shardedFixture(t, 1800, 4)
		ev := shard.NewEvaluator(coord, "fact")
		ev.Naive = naive
		qs := testQueries()
		qs = append(qs, qs[0]) // duplicate exercises dedup slots
		got := ev.EvaluateBatch(context.Background(), qs)
		want := front.EvaluateBatch(context.Background(), qs, sqlexec.BatchOptions{})
		for i := range qs {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Errorf("naive=%v %s: unsharded %v, sharded %v", naive, qs[i].Key(), want[i], got[i])
			}
		}
		if !naive {
			snap := coord.Stats().Snapshot()
			if snap["planned_cubes"] == 0 || snap["cube_answers"] == 0 {
				t.Fatalf("merged evaluator planned %d cubes, %d cube answers; want > 0",
					snap["planned_cubes"], snap["cube_answers"])
			}
		}
	}
}

// stubWorker lets cancellation tests control per-worker behaviour.
type stubWorker struct {
	err   error         // returned immediately when non-nil
	block chan struct{} // when non-nil, wait for ctx or this channel
}

func (w *stubWorker) Cube(ctx context.Context, _ sqlexec.CubeRequest) (*sqlexec.CubePartial, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.block != nil {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-w.block:
		}
	}
	return &sqlexec.CubePartial{Tables: []string{"fact"}}, nil
}

func (w *stubWorker) Scan(ctx context.Context, _ sqlexec.ScanRequest) (*sqlexec.ScanPartial, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.block != nil {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-w.block:
		}
	}
	return &sqlexec.ScanPartial{Main: &sqlexec.PartialAcc{}}, nil
}

// TestCoordinatorFirstErrorCancelsPeers pins the fan-out contract: one
// failing worker aborts the whole pass, the blocked peer is released by
// cancellation (no goroutine leak under -race), and the root-cause error —
// not the induced context.Canceled — comes back.
func TestCoordinatorFirstErrorCancelsPeers(t *testing.T) {
	boom := errors.New("shard 0 exploded")
	workers := []shard.Worker{
		&stubWorker{err: boom},
		&stubWorker{block: make(chan struct{})}, // released only by cancel
	}
	coord := shard.NewCoordinator(workers, nil)
	done := make(chan error, 1)
	go func() {
		_, err := coord.Cube(context.Background(), sqlexec.CubeRequest{})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want the worker failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fan-out deadlocked: peer was not cancelled after first error")
	}
}

func TestCoordinatorHonorsCallerCancellation(t *testing.T) {
	workers := []shard.Worker{
		&stubWorker{block: make(chan struct{})},
		&stubWorker{block: make(chan struct{})},
	}
	coord := shard.NewCoordinator(workers, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := coord.Evaluate(ctx, sqlexec.Query{Agg: sqlexec.Count})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fan-out did not honor caller cancellation")
	}
}

func TestRingPlacement(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := shard.NewRing(nodes)
	if got := r.Nodes(); len(got) != 3 {
		t.Fatalf("nodes = %v", got)
	}
	const shards = 64
	place := make([]string, shards)
	used := map[string]int{}
	for i := 0; i < shards; i++ {
		place[i] = r.NodeForShard(i)
		if place[i] == "" {
			t.Fatalf("shard %d unplaced", i)
		}
		used[place[i]]++
	}
	if len(used) != 3 {
		t.Fatalf("placement uses %d of 3 nodes: %v", len(used), used)
	}
	// Deterministic: a rebuilt ring places identically.
	r2 := shard.NewRing([]string{nodes[2], nodes[0], nodes[1], nodes[0]})
	for i := 0; i < shards; i++ {
		if r2.NodeForShard(i) != place[i] {
			t.Fatalf("shard %d placement not deterministic", i)
		}
	}
	// Consistency: dropping node c only re-homes shards that lived on c.
	r3 := shard.NewRing(nodes[:2])
	for i := 0; i < shards; i++ {
		if place[i] != nodes[2] && r3.NodeForShard(i) != place[i] {
			t.Fatalf("shard %d moved from surviving node %s on topology change", i, place[i])
		}
	}
	if shard.NewRing(nil).Node("x") != "" {
		t.Fatal("empty ring must return no node")
	}
}

// shardHandler serves the shard wire protocol over a LocalWorker the way
// aggcheckd does, so the Client can be tested without the full daemon.
func shardHandler(t *testing.T, w shard.Worker) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		var out any
		var err error
		switch {
		case strings.HasSuffix(r.URL.Path, "/cube"):
			var req sqlexec.CubeRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			out, err = w.Cube(r.Context(), req)
		case strings.HasSuffix(r.URL.Path, "/scan"):
			var req sqlexec.ScanRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			out, err = w.Scan(r.Context(), req)
		default:
			http.NotFound(rw, r)
			return
		}
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(out)
	})
}

// TestClientTransportMatchesLocal runs the same fan-out through HTTP
// workers and checks answers bit-for-bit against the unsharded engine.
func TestClientTransportMatchesLocal(t *testing.T) {
	const rows, k = 1500, 3
	src := buildSource(t, rows)
	s, err := db.NewSharder(src, k, db.ShardOptions{Keys: map[string]string{"fact": "cat"}})
	if err != nil {
		t.Fatal(err)
	}
	var workers []shard.Worker
	for i, p := range s.Partitions() {
		srv := httptest.NewServer(shardHandler(t, &shard.LocalWorker{Engine: sqlexec.NewEngine(p)}))
		defer srv.Close()
		workers = append(workers, &shard.Client{Base: srv.URL, Database: p.Name})
		_ = i
	}
	front := sqlexec.NewEngine(src)
	coord := shard.NewCoordinator(workers, &front.Stats)
	ev := shard.NewEvaluator(coord, "fact")
	qs := testQueries()
	got := ev.EvaluateBatch(context.Background(), qs)
	want := front.EvaluateBatch(context.Background(), qs, sqlexec.BatchOptions{})
	for i := range qs {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("%s: local %v, http %v", qs[i].Key(), want[i], got[i])
		}
	}
	if errBody := coord.Stats().Snapshot()["shard_fanouts"]; errBody == 0 {
		t.Fatal("no fan-outs recorded over HTTP transport")
	}
}

// TestClientReportsRemoteError pins the error surface: a failing peer maps
// to a descriptive error, not a decode panic.
func TestClientReportsRemoteError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		http.Error(rw, "partition gone", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := &shard.Client{Base: srv.URL, Database: "x"}
	_, err := c.Cube(context.Background(), sqlexec.CubeRequest{})
	if err == nil || !strings.Contains(err.Error(), "partition gone") {
		t.Fatalf("err = %v, want remote message surfaced", err)
	}
}
