package shard

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"

	"aggchecker/internal/sqlexec"
)

// Evaluator answers candidate-query batches by scatter-gather over the
// coordinator's shard workers. It mirrors Engine.EvaluateBatch — cross-claim
// deduplication, merged cube planning, a bounded worker pool, direct-scan
// fallback — but every cube pass and scan is a shard fan-out instead of one
// local pass. It satisfies model.Evaluator structurally and keeps the
// document-wide literal pool of the unsharded CubeEvaluator so cube
// signatures stay stable across claims and EM iterations (every partition
// engine then caches and delta-advances the same cube set independently).
type Evaluator struct {
	Coord *Coordinator
	// Table is the planner's default table for queries without predicates.
	Table string
	// Workers bounds the pool running cube fan-outs and direct scans; ≤ 0
	// uses GOMAXPROCS.
	Workers int
	// Naive skips planning and answers every query with a fanned-out scan
	// (the sharded counterpart of NaiveEvaluator, for Table 6 comparisons).
	Naive bool
	// MergeSmall mirrors the cost model toggle of the unsharded planner:
	// with caching partitions a small query group still pays for a cube
	// pass; without, it falls back to direct scans.
	MergeSmall bool

	mu   sync.Mutex
	pool map[string]map[string]bool // ColumnRef.String() -> literal set
}

// NewEvaluator returns a merging sharded evaluator over the coordinator.
func NewEvaluator(coord *Coordinator, defaultTable string) *Evaluator {
	return &Evaluator{
		Coord:      coord,
		Table:      defaultTable,
		MergeSmall: true,
		pool:       make(map[string]map[string]bool),
	}
}

// SetPool installs the document-wide literal pool (column reference string
// → literals), replacing any accumulated literals for those columns.
func (ev *Evaluator) SetPool(pool map[string][]string) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	for col, lits := range pool {
		set := make(map[string]bool, len(lits))
		for _, l := range lits {
			set[l] = true
		}
		ev.pool[col] = set
	}
}

// snapshotPool folds the batch's literals into the accumulated pool and
// returns a sorted snapshot restricted to the batch's predicate columns.
func (ev *Evaluator) snapshotPool(queries []sqlexec.Query) map[string][]string {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if ev.pool == nil {
		ev.pool = make(map[string]map[string]bool)
	}
	cols := make(map[string]bool)
	for _, q := range queries {
		for _, p := range q.Preds {
			col := p.Col.String()
			cols[col] = true
			set := ev.pool[col]
			if set == nil {
				set = make(map[string]bool)
				ev.pool[col] = set
			}
			set[p.Value] = true
		}
	}
	out := make(map[string][]string, len(cols))
	for col := range cols {
		set := ev.pool[col]
		lits := make([]string, 0, len(set))
		for l := range set {
			lits = append(lits, l)
		}
		sort.Strings(lits)
		out[col] = lits
	}
	return out
}

// EvaluateBatch answers every query of the batch positionally, NaN marking
// undefined results. Cancellation is honored between fan-outs and inside
// every shard worker's scan; slots skipped after cancellation stay NaN.
func (ev *Evaluator) EvaluateBatch(ctx context.Context, queries []sqlexec.Query) []float64 {
	out := make([]float64, len(queries))
	if len(queries) == 0 {
		return out
	}
	stats := ev.Coord.Stats()
	stats.BatchQueries.Add(int64(len(queries)))

	// Cross-claim deduplication by canonical query key.
	uniq := make([]sqlexec.Query, 0, len(queries))
	uniqIdx := make(map[string]int, len(queries))
	slot := make([]int, len(queries))
	for i, q := range queries {
		k := q.Key()
		j, ok := uniqIdx[k]
		if !ok {
			j = len(uniq)
			uniqIdx[k] = j
			uniq = append(uniq, q)
		}
		slot[i] = j
	}

	res := make([]float64, len(uniq))
	for i := range res {
		res[i] = math.NaN()
	}

	direct := func(i int) {
		v, err := ev.Coord.Evaluate(ctx, uniq[i])
		if err != nil {
			v = math.NaN()
		}
		res[i] = v
	}

	var cubes []*sqlexec.CubePlan
	var directIdx []int
	if ev.Naive {
		directIdx = make([]int, len(uniq))
		for i := range uniq {
			directIdx[i] = i
		}
	} else {
		plan := sqlexec.PlanCubes(uniq, ev.Table, ev.snapshotPool(uniq), ev.MergeSmall)
		cubes, directIdx = plan.Cubes, plan.Direct
		stats.PlannedCubes.Add(int64(len(cubes)))
	}

	runCubePlan := func(p *sqlexec.CubePlan) {
		cube, err := ev.Coord.Cube(ctx, sqlexec.CubeRequest{Tables: p.Tables, Dims: p.Dims, Reqs: p.Reqs})
		if err != nil {
			if ctx.Err() != nil {
				return // slots stay NaN
			}
			for _, i := range p.QueryIdx {
				direct(i)
			}
			return
		}
		for _, i := range p.QueryIdx {
			if v, ok := cube.Value(uniq[i]); ok {
				stats.CubeAnswers.Add(1)
				res[i] = v
			} else {
				direct(i)
			}
		}
	}

	workers := ev.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tasks := len(cubes) + len(directIdx)
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for _, p := range cubes {
			if ctx.Err() != nil {
				break
			}
			runCubePlan(p)
		}
		for _, i := range directIdx {
			if ctx.Err() != nil {
				break
			}
			direct(i)
		}
	} else {
		// Each task writes disjoint slots of res, so no lock is needed.
		type task struct {
			cube   *sqlexec.CubePlan
			direct int
		}
		ch := make(chan task)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range ch {
					if t.cube != nil {
						runCubePlan(t.cube)
					} else {
						direct(t.direct)
					}
				}
			}()
		}
		for _, p := range cubes {
			if ctx.Err() != nil {
				break
			}
			ch <- task{cube: p}
		}
		for _, i := range directIdx {
			if ctx.Err() != nil {
				break
			}
			ch <- task{direct: i}
		}
		close(ch)
		wg.Wait()
	}

	for i := range out {
		out[i] = res[slot[i]]
	}
	return out
}
