// Package shard implements sharded scatter-gather execution over
// hash-partitioned fact tables (db.Sharder). A Coordinator fans one planned
// cube pass (or one direct scan) out to K shard workers, each running the
// ordinary vectorized kernel over its own snapshot-versioned partition, and
// folds the per-shard partials back together with the exact mergeAppend
// algebra of the delta path — so a K-shard answer is bit-for-bit the
// unsharded answer for integer-valued data, and exact for counts, min/max,
// and distinct sets always.
//
// Workers come in two transports behind the same interface: LocalWorker
// wraps an in-process partition engine (sharing the morsel scheduler of the
// front engine), and Client speaks the same requests over HTTP to a peer
// aggcheckd serving its partitions, with consistent-hash placement (Ring)
// deciding which peer owns which shard.
package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"aggchecker/internal/sqlexec"
)

// Worker executes one shard's share of a pass. Implementations must be safe
// for concurrent use; the Coordinator calls every worker of a fan-out
// concurrently.
type Worker interface {
	// Cube runs the requested cube pass over the worker's partition.
	Cube(ctx context.Context, req sqlexec.CubeRequest) (*sqlexec.CubePartial, error)
	// Scan runs one direct query over the worker's partition.
	Scan(ctx context.Context, req sqlexec.ScanRequest) (*sqlexec.ScanPartial, error)
}

// LocalWorker runs shard requests on an in-process partition engine.
type LocalWorker struct {
	Engine *sqlexec.Engine
}

// Cube implements Worker.
func (w *LocalWorker) Cube(ctx context.Context, req sqlexec.CubeRequest) (*sqlexec.CubePartial, error) {
	return w.Engine.CubePartialFor(ctx, req)
}

// Scan implements Worker.
func (w *LocalWorker) Scan(ctx context.Context, req sqlexec.ScanRequest) (*sqlexec.ScanPartial, error) {
	return w.Engine.ScanPartialContext(ctx, req.Query)
}

// stragglerFloor keeps the straggler detector quiet on fast in-process
// fan-outs, where 2x a microsecond median is still instantaneous: a worker
// only counts as a straggler when it also lags the median by a humanly
// observable margin.
const stragglerFloor = 2 * time.Millisecond

// Coordinator fans passes out to shard workers and merges the partials.
// Worker order is shard order: merges fold shard 0..K-1 deterministically,
// which is what makes sharded answers reproducible.
type Coordinator struct {
	workers []Worker
	stats   *sqlexec.Stats
}

// NewCoordinator builds a coordinator over the shard workers. stats is the
// front engine's counter block (may be nil): fan-out, partial, merge-time,
// and straggler counters are recorded there so they surface in
// Report.Stats, Table 6, and service status alongside the ordinary
// execution counters.
func NewCoordinator(workers []Worker, stats *sqlexec.Stats) *Coordinator {
	if stats == nil {
		stats = &sqlexec.Stats{}
	}
	return &Coordinator{workers: workers, stats: stats}
}

// NumWorkers returns the fan-out width K.
func (c *Coordinator) NumWorkers() int { return len(c.workers) }

// Stats returns the counter block the coordinator records into.
func (c *Coordinator) Stats() *sqlexec.Stats { return c.stats }

// fanOut calls fn once per worker concurrently and collects the results in
// worker order. The first error cancels the remaining workers and is
// returned (preferring a real failure over the cancellation noise of the
// others). Per-worker latencies feed the straggler counter.
func fanOut[T any](ctx context.Context, c *Coordinator, fn func(ctx context.Context, w Worker) (T, error)) ([]T, error) {
	k := len(c.workers)
	if k == 0 {
		return nil, fmt.Errorf("shard: coordinator has no workers")
	}
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, k)
	errs := make([]error, k)
	lats := make([]time.Duration, k)
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w Worker) {
			defer wg.Done()
			start := time.Now()
			res, err := fn(fanCtx, w)
			lats[i] = time.Since(start)
			if err != nil {
				errs[i] = err
				cancel() // first failure aborts the fan-out
				return
			}
			results[i] = res
		}(i, w)
	}
	wg.Wait()

	c.stats.ShardFanouts.Add(1)
	c.stats.ShardPartials.Add(int64(k))
	c.stats.ShardStragglers.Add(countStragglers(lats))

	// Prefer a worker's own failure over the context cancellations it
	// induced in its peers, so callers see the root cause.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (firstErr == context.Canceled && err != context.Canceled) {
			firstErr = err
		}
	}
	if firstErr != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, firstErr
	}
	return results, nil
}

// countStragglers counts workers that finished far behind the fan-out's
// median latency (more than twice the median, and at least stragglerFloor
// beyond it).
func countStragglers(lats []time.Duration) int64 {
	if len(lats) < 2 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	var n int64
	for _, l := range lats {
		if l > 2*median && l > median+stragglerFloor {
			n++
		}
	}
	return n
}

// Cube fans the cube pass out to every shard worker and merges the partials
// in shard order. The merged result answers exactly the queries the
// unsharded cube would.
func (c *Coordinator) Cube(ctx context.Context, req sqlexec.CubeRequest) (*sqlexec.CubeResult, error) {
	parts, err := fanOut(ctx, c, func(ctx context.Context, w Worker) (*sqlexec.CubePartial, error) {
		return w.Cube(ctx, req)
	})
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		c.stats.RowsScanned.Add(p.Rows)
	}
	c.stats.CubePasses.Add(1)
	start := time.Now()
	res, err := sqlexec.MergeCubePartials(parts)
	c.stats.ShardMergeNanos.Add(time.Since(start).Nanoseconds())
	return res, err
}

// Evaluate fans one direct query out to every shard worker and finalizes
// the folded accumulators, preserving the ratio-aggregate base contract
// (each shard contributes numerator and denominator rows alike).
func (c *Coordinator) Evaluate(ctx context.Context, q sqlexec.Query) (float64, error) {
	parts, err := fanOut(ctx, c, func(ctx context.Context, w Worker) (*sqlexec.ScanPartial, error) {
		return w.Scan(ctx, sqlexec.ScanRequest{Query: q})
	})
	if err != nil {
		return 0, err
	}
	c.stats.DirectQueries.Add(1)
	for _, p := range parts {
		c.stats.RowsScanned.Add(p.RowsRead)
		c.stats.BlocksScanned.Add(p.Scanned)
		c.stats.BlocksPruned.Add(p.Pruned)
	}
	start := time.Now()
	v, err := sqlexec.FinalizeScanPartials(q, parts)
	c.stats.ShardMergeNanos.Add(time.Since(start).Nanoseconds())
	return v, err
}
