package shard_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"aggchecker/internal/db"
	"aggchecker/internal/shard"
	"aggchecker/internal/sqlexec"
)

// This file holds the randomized sharding differential: K-shard merged cubes
// must be bit-for-bit identical to unsharded execution across random append
// schedules, NULL-heavy columns, CountDistinct, and joined scopes. Measure
// values are integral (small whole numbers), so float sums regroup exactly
// and exact bit comparison is sound; any divergence is a real merge bug, not
// summation-order noise.

var (
	diffRegions = []string{"north", "south", "east", "west"}
	diffTeams   = []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	diffTags    = []string{"a", "b", "c", "d", "e", "f"}
	diffDivs    = []string{"alpha", "beta", "gamma"}
)

// randDiffRows draws n random fact rows: region is ~30% NULL, team is a
// foreign key that is sometimes NULL and sometimes dangling (no dims row),
// score is an integral measure with ~25% NULLs, tag feeds CountDistinct.
func randDiffRows(rng *rand.Rand, n int) [][]any {
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		row := make([]any, 4)
		if rng.Intn(10) >= 3 {
			row[0] = diffRegions[rng.Intn(len(diffRegions))]
		}
		switch r := rng.Intn(12); {
		case r < 9:
			row[1] = diffTeams[rng.Intn(len(diffTeams))]
		case r < 11:
			row[1] = "t9" // dangling: inner joins drop the row on both paths
		}
		if rng.Intn(4) > 0 {
			row[2] = float64(rng.Intn(21))
		}
		row[3] = diffTags[rng.Intn(len(diffTags))]
		rows = append(rows, row)
	}
	return rows
}

// newDiffDB builds the fact+dims schema (fact.team -> dims.team) with no
// rows; the test appends random batches between absorb rounds.
func newDiffDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.NewDatabase("diff")
	d.MustAddTable(db.MustNewTable("fact",
		db.NewStringColumn("region"),
		db.NewStringColumn("team"),
		db.NewFloatColumn("score"),
		db.NewStringColumn("tag")))
	dk := db.NewStringColumn("team")
	dv := db.NewStringColumn("div")
	for i, team := range diffTeams {
		dk.AppendString(team)
		dv.AppendString(diffDivs[i%len(diffDivs)])
	}
	dims := db.MustNewTable("dims", dk, dv)
	dims.PrimaryKey = "team"
	d.MustAddTable(dims)
	d.MustAddForeignKey(db.ForeignKey{FromTable: "fact", FromColumn: "team", ToTable: "dims", ToColumn: "team"})
	return d
}

// diffRequests covers the cube shapes the merge algebra has to get right:
// single-table slices over a NULL-heavy dimension with Sum/Min/Max and
// CountDistinct, and a joined scope grouped by a replicated-dimension column.
func diffRequests() []sqlexec.CubeRequest {
	region := sqlexec.ColumnRef{Table: "fact", Column: "region"}
	score := sqlexec.ColumnRef{Table: "fact", Column: "score"}
	tag := sqlexec.ColumnRef{Table: "fact", Column: "tag"}
	div := sqlexec.ColumnRef{Table: "dims", Column: "div"}
	aggs := []sqlexec.AggRequest{
		{Fn: sqlexec.Count},
		{Fn: sqlexec.Sum, Col: score},
		{Fn: sqlexec.Min, Col: score},
		{Fn: sqlexec.Max, Col: score},
		{Fn: sqlexec.CountDistinct, Col: tag},
	}
	return []sqlexec.CubeRequest{
		{
			Tables: []string{"fact"},
			Dims: []sqlexec.DimSpec{
				{Col: region, Literals: diffRegions},
				{Col: tag, Literals: diffTags[:3]},
			},
			Reqs: aggs,
		},
		{
			Tables: []string{"fact", "dims"},
			Dims: []sqlexec.DimSpec{
				{Col: div, Literals: diffDivs},
				{Col: region, Literals: diffRegions[:2]},
			},
			Reqs: aggs,
		},
	}
}

// diffProbes expands one cube request into the point queries used for the
// bit-for-bit comparison: rolled-up, every single-literal slice, and the
// full two-dimensional grid, each under every requested aggregate.
func diffProbes(req sqlexec.CubeRequest) []sqlexec.Query {
	var predSets [][]sqlexec.Predicate
	predSets = append(predSets, nil)
	for _, d := range req.Dims {
		for _, lit := range d.Literals {
			predSets = append(predSets, []sqlexec.Predicate{{Col: d.Col, Value: lit}})
		}
	}
	for _, l0 := range req.Dims[0].Literals {
		for _, l1 := range req.Dims[1].Literals {
			predSets = append(predSets, []sqlexec.Predicate{
				{Col: req.Dims[0].Col, Value: l0},
				{Col: req.Dims[1].Col, Value: l1},
			})
		}
	}
	var qs []sqlexec.Query
	for _, preds := range predSets {
		for _, ar := range req.Reqs {
			qs = append(qs, sqlexec.Query{Agg: ar.Fn, AggCol: ar.Col, Preds: preds})
		}
	}
	return qs
}

// sameBits requires bit-identical floats, treating every NaN encoding as
// equal (unanswerable Min/Max over all-NULL slices yield NaN on both paths).
func sameBits(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// diffCoordinator builds a fresh coordinator over the sharder's current
// partition snapshots, one single-threaded in-process worker per shard.
func diffCoordinator(s *db.Sharder) *shard.Coordinator {
	workers := make([]shard.Worker, 0, s.NumShards())
	for _, p := range s.Partitions() {
		workers = append(workers, &shard.LocalWorker{Engine: sqlexec.NewEngine(p)})
	}
	return shard.NewCoordinator(workers, &sqlexec.Stats{})
}

func TestRandomizedShardDifferential(t *testing.T) {
	cases := []struct {
		seed   int64
		shards int
		hashed bool // hash-placement on fact.team vs round-robin
	}{
		{seed: 1, shards: 2, hashed: true},
		{seed: 7, shards: 3, hashed: false},
		{seed: 42, shards: 5, hashed: true},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("seed=%d/k=%d/hashed=%v", tc.seed, tc.shards, tc.hashed)
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			src := newDiffDB(t)
			if err := src.Append("fact", randDiffRows(rng, 400+rng.Intn(400))...); err != nil {
				t.Fatal(err)
			}
			if _, err := src.Commit(); err != nil {
				t.Fatal(err)
			}
			opts := db.ShardOptions{}
			if tc.hashed {
				opts.Keys = map[string]string{"fact": "team"}
			}
			s, err := db.NewSharder(src, tc.shards, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Round 0 compares the initial load; each later round appends a
			// random batch (occasionally empty, so absorb-of-nothing is
			// exercised too), commits, and absorbs before re-comparing.
			for round := 0; round < 3; round++ {
				if round > 0 {
					batch := randDiffRows(rng, rng.Intn(300))
					if len(batch) > 0 {
						if err := src.Append("fact", batch...); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := src.Commit(); err != nil {
						t.Fatal(err)
					}
					if _, err := s.Absorb(); err != nil {
						t.Fatal(err)
					}
				}
				compareDiffRound(t, round, src, s)
			}
		})
	}
}

func compareDiffRound(t *testing.T, round int, src *db.Database, s *db.Sharder) {
	t.Helper()
	ctx := context.Background()
	coord := diffCoordinator(s)
	ref := sqlexec.NewEngine(src)
	for ri, req := range diffRequests() {
		merged, err := coord.Cube(ctx, req)
		if err != nil {
			t.Fatalf("round %d req %d: sharded cube: %v", round, ri, err)
		}
		want, err := ref.CubeForContext(ctx, req.Tables, req.Dims, req.Reqs)
		if err != nil {
			t.Fatalf("round %d req %d: unsharded cube: %v", round, ri, err)
		}
		for _, q := range diffProbes(req) {
			wv, wok := want.Value(q)
			gv, gok := merged.Value(q)
			if wok != gok {
				t.Fatalf("round %d req %d %v: answerable sharded=%v unsharded=%v", round, ri, q, gok, wok)
			}
			if !wok {
				continue
			}
			if !sameBits(wv, gv) {
				t.Fatalf("round %d req %d %v: sharded=%v (%#x) unsharded=%v (%#x)",
					round, ri, q, gv, math.Float64bits(gv), wv, math.Float64bits(wv))
			}
		}
	}
}
