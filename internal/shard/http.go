package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"

	"aggchecker/internal/sqlexec"
)

// Client is a Worker that executes shard requests on a remote aggcheckd
// serving the partition as one of its databases. Requests POST to
//
//	{base}/v1/shard/databases/{database}/cube
//	{base}/v1/shard/databases/{database}/scan
//
// with JSON bodies (sqlexec.CubeRequest / sqlexec.ScanRequest) and JSON
// partials back; the wire forms are canonical (bit-pattern floats, hashed
// distinct keys), so remote partials merge exactly like local ones.
type Client struct {
	// Base is the peer's base URL, e.g. "http://shard3:8080".
	Base string
	// Database names the partition database on the peer.
	Database string
	// HTTP is the client to use; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) endpoint(kind string) string {
	return strings.TrimRight(c.Base, "/") + "/v1/shard/databases/" + url.PathEscape(c.Database) + "/" + kind
}

// post sends one shard request and decodes the partial.
func (c *Client) post(ctx context.Context, kind string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("shard: encode %s request: %w", kind, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint(kind), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("shard: %s %s: %s: %s", kind, c.endpoint(kind), resp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("shard: decode %s partial: %w", kind, err)
	}
	return nil
}

// Cube implements Worker over HTTP.
func (c *Client) Cube(ctx context.Context, req sqlexec.CubeRequest) (*sqlexec.CubePartial, error) {
	var p sqlexec.CubePartial
	if err := c.post(ctx, "cube", req, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// Scan implements Worker over HTTP.
func (c *Client) Scan(ctx context.Context, req sqlexec.ScanRequest) (*sqlexec.ScanPartial, error) {
	var p sqlexec.ScanPartial
	if err := c.post(ctx, "scan", req, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// Ring places shards on nodes by consistent hashing: each node projects
// ringReplicas virtual points onto a hash circle and a shard lands on the
// first point clockwise of its own hash. Adding or removing one node moves
// only the shards that hashed next to its points, so a topology change
// re-homes O(shards/nodes) partitions instead of reshuffling everything.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// ringReplicas is the virtual-node count per physical node; enough points
// that placement is balanced within a few percent for small clusters.
const ringReplicas = 97

// NewRing builds a consistent-hash ring over the node identifiers
// (typically base URLs). Duplicate nodes are folded.
func NewRing(nodes []string) *Ring {
	r := &Ring{}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	sort.Strings(r.nodes)
	return r
}

// Nodes returns the distinct nodes on the ring, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Node returns the node owning the key, or "" on an empty ring.
func (r *Ring) Node(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// NodeForShard places one shard index on the ring.
func (r *Ring) NodeForShard(shard int) string {
	return r.Node(fmt.Sprintf("shard-%d", shard))
}

// ringHash is FNV-1a 64 with an avalanche finalizer. Plain FNV leaves the
// high bits of keys sharing a prefix nearly identical ("node#1" vs
// "node#2"), which collapses every virtual point of a node onto one arc of
// the circle; the multiply-xorshift finalizer scatters them.
func ringHash(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
