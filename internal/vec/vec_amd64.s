//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 micro-kernels. Every function processes whole vector groups only
// (the Go wrappers in dispatch_amd64.go handle tails), uses quiet
// ordered compares (no FP exceptions, NaN compares false), and ends with
// VZEROUPPER to avoid AVX/SSE transition stalls in the caller.

// func cmpEqF64Asm(vals *float64, want float64, mask *uint64, words int)
//
// Builds one 64-bit mask word per 64 input rows: 16 VCMPPD/VMOVMSKPD
// steps of 4 lanes each, shifted into place. EQ_OQ (imm 0): NaN never
// matches, ±0 compare equal — identical to Go's ==.
TEXT ·cmpEqF64Asm(SB), NOSPLIT, $0-32
	MOVQ         vals+0(FP), SI
	MOVQ         mask+16(FP), DI
	MOVQ         words+24(FP), R10
	VBROADCASTSD want+8(FP), Y0

word_f64:
	TESTQ R10, R10
	JZ    done_f64
	XORQ  R8, R8
	XORQ  CX, CX

quad_f64:
	VCMPPD    $0, (SI), Y0, Y1
	VMOVMSKPD Y1, AX
	SHLQ      CX, AX
	ORQ       AX, R8
	ADDQ      $32, SI
	ADDQ      $4, CX
	CMPQ      CX, $64
	JL        quad_f64
	MOVQ      R8, (DI)
	ADDQ      $8, DI
	DECQ      R10
	JMP       word_f64

done_f64:
	VZEROUPPER
	RET

// func cmpEqI32Asm(codes *int32, want int32, mask *uint64, words int)
//
// One mask word per 64 codes: 8 VPCMPEQD/VMOVMSKPS steps of 8 lanes.
TEXT ·cmpEqI32Asm(SB), NOSPLIT, $0-32
	MOVQ         codes+0(FP), SI
	MOVQ         mask+16(FP), DI
	MOVQ         words+24(FP), R10
	MOVL         want+8(FP), AX
	MOVQ         AX, X0
	VPBROADCASTD X0, Y0

word_i32:
	TESTQ R10, R10
	JZ    done_i32
	XORQ  R8, R8
	XORQ  CX, CX

oct_i32:
	VMOVDQU   (SI), Y1
	VPCMPEQD  Y0, Y1, Y1
	VMOVMSKPS Y1, AX
	SHLQ      CX, AX
	ORQ       AX, R8
	ADDQ      $32, SI
	ADDQ      $8, CX
	CMPQ      CX, $64
	JL        oct_i32
	MOVQ      R8, (DI)
	ADDQ      $8, DI
	DECQ      R10
	JMP       word_i32

done_i32:
	VZEROUPPER
	RET

// func countNegI32Asm(codes *int32, octs int) int64
//
// Counts negative codes (sign bits) 8 at a time: VMOVMSKPS + POPCNT.
TEXT ·countNegI32Asm(SB), NOSPLIT, $0-24
	MOVQ codes+0(FP), SI
	MOVQ octs+8(FP), R10
	XORQ R8, R8

oct_neg:
	TESTQ     R10, R10
	JZ        done_neg
	VMOVDQU   (SI), Y1
	VMOVMSKPS Y1, AX
	POPCNTQ   AX, AX
	ADDQ      AX, R8
	ADDQ      $32, SI
	DECQ      R10
	JMP       oct_neg

done_neg:
	MOVQ R8, ret+16(FP)
	VZEROUPPER
	RET

// func andPopcountAsm(a, b *uint64, words int) int64
TEXT ·andPopcountAsm(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ words+16(FP), R10
	XORQ R8, R8

word_pop:
	TESTQ   R10, R10
	JZ      done_pop
	MOVQ    (SI), AX
	ANDQ    (DI), AX
	POPCNTQ AX, AX
	ADDQ    AX, R8
	ADDQ    $8, SI
	ADDQ    $8, DI
	DECQ    R10
	JMP     word_pop

done_pop:
	MOVQ R8, ret+24(FP)
	RET

// func minMaxF64Asm(vals *float64, quads int, out *[8]float64)
//
// Lane-parallel NaN-skipping min/max fold. out arrives seeded with
// {+Inf x4, -Inf x4}; LT_OQ/GT_OQ compares are false for NaN lanes, so
// NaNs never replace an accumulator. The Go wrapper folds the 4+4 lane
// partials (so ±0 may resolve to either sign — documented in MinMaxF64).
TEXT ·minMaxF64Asm(SB), NOSPLIT, $0-24
	MOVQ    vals+0(FP), SI
	MOVQ    quads+8(FP), R10
	MOVQ    out+16(FP), DI
	VMOVUPD (DI), Y0      // running min lanes
	VMOVUPD 32(DI), Y1    // running max lanes

quad_mm:
	TESTQ     R10, R10
	JZ        done_mm
	VMOVUPD   (SI), Y2
	VCMPPD    $0x11, Y0, Y2, Y3  // LT_OQ: v < min
	VBLENDVPD Y3, Y2, Y0, Y0
	VCMPPD    $0x1e, Y1, Y2, Y3  // GT_OQ: v > max
	VBLENDVPD Y3, Y2, Y1, Y1
	ADDQ      $32, SI
	DECQ      R10
	JMP       quad_mm

done_mm:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VZEROUPPER
	RET
