// Package vec holds the measured micro-kernel layer under the cube and
// scan execution paths: the handful of inner loops that dominate per-row
// cost once zone maps, batching, and scheduling have removed everything
// else (mask→index selection compaction, SoA accumulate into gathered
// cells, min/max folds, dictionary-code gather, bitmap AND/popcount,
// equality compare → bitmask).
//
// Every primitive ships in up to three flavors:
//
//   - XxxRef: the plain-Go reference loop. Semantics are defined by this
//     implementation; everything else must match it bit for bit (for
//     min/max, up to the sign of zero — see MinMaxF64Ref).
//   - XxxUnrolled: a hand-unrolled, bounds-check-eliminated Go variant.
//   - AVX2 assembly (amd64 only, vec_amd64.s), reachable only through the
//     dispatched entry points below.
//
// The package-level function variables (CmpEqF64, SelFromMask, ...) are
// the entry points the engine calls. They default to the unrolled Go
// variants and are rebound to assembly in init() when the CPU reports
// AVX2 (+OS ymm state) — unless the binary is built with `-tags noasm`,
// which removes the assembly and the CPUID probe entirely. Impl()
// reports which configuration is live.
//
// Float-sum ordering: primitives that add float64s (AccumulateF64,
// const folds) are deliberately kept in strict row order and never get
// SIMD variants — reassociating the sums would break the engine's
// bit-for-bit differential guarantees against the scalar kernel.
package vec

import (
	"math"
	"math/bits"
)

// Dispatched entry points. Default to the portable unrolled variants;
// rebound to AVX2 assembly by init() in dispatch_amd64.go when supported.
var (
	CmpEqF64       func(vals []float64, want float64, mask []uint64)                              = CmpEqF64Unrolled
	CmpEqI32       func(codes []int32, want int32, mask []uint64)                                 = CmpEqI32Unrolled
	SelFromMask    func(mask []uint64, n int, sel []int32) int                                    = SelFromMaskUnrolled
	GatherF64      func(dst, src []float64, idx []int32)                                          = GatherF64Unrolled
	GatherI32      func(dst, src []int32, idx []int32)                                            = GatherI32Unrolled
	LookupCodes    func(dst, codes, lut []int32, def int32)                                       = LookupCodesUnrolled
	AndWords       func(dst, src []uint64)                                                        = AndWordsUnrolled
	AndPopcount    func(a, b []uint64) int                                                        = AndPopcountUnrolled
	Popcount       func(words []uint64) int                                                       = PopcountUnrolled
	MinMaxF64      func(vals []float64) (mn, mx float64)                                          = MinMaxF64Unrolled
	CountNonNegI32 func(codes []int32) int                                                        = CountNonNegI32Unrolled
	AccumulateF64  func(offs []int32, vals []float64, nonNull []int64, sum, minv, maxv []float64) = AccumulateF64Unrolled
)

// Impl reports the live dispatch configuration: "avx2" when the assembly
// kernels are bound, "go" otherwise (non-amd64, `noasm` build, or a CPU
// without AVX2).
func Impl() string { return asmLevel }

// MaskWords returns the number of uint64 words needed to hold an n-row
// bitmask.
func MaskWords(n int) int { return (n + 63) >> 6 }

// ---------------------------------------------------------------------------
// CmpEqF64: float equality compare → bitmask.
//
// Sets bit i of mask for every vals[i] == want and clears all other bits
// in the first MaskWords(len(vals)) words, including the tail bits of the
// last word. NaN never matches (even NaN want); ±0 compare equal.

// CmpEqF64Ref is the reference implementation of CmpEqF64.
func CmpEqF64Ref(vals []float64, want float64, mask []uint64) {
	for w := range mask[:MaskWords(len(vals))] {
		mask[w] = 0
	}
	for i, v := range vals {
		if v == want {
			mask[i>>6] |= 1 << uint(i&63)
		}
	}
}

// CmpEqF64Unrolled builds each mask word in a register from four
// branchless compare-to-bit lanes per step. Measured tradeoff: at low
// match density the reference's predicted-not-taken branch is ~1.5x
// faster, but this variant's cost is independent of selectivity (no
// mispredict cliff on 50% matches); the real win for this primitive is
// the AVX2 kernel at 3.5x+ over both.
func CmpEqF64Unrolled(vals []float64, want float64, mask []uint64) {
	n := len(vals)
	words := n >> 6
	for w := 0; w < words; w++ {
		blk := vals[w<<6 : w<<6+64 : w<<6+64]
		var m uint64
		for i := 0; i < 64; i += 4 {
			var b0, b1, b2, b3 uint64
			if blk[i] == want {
				b0 = 1
			}
			if blk[i+1] == want {
				b1 = 1
			}
			if blk[i+2] == want {
				b2 = 1
			}
			if blk[i+3] == want {
				b3 = 1
			}
			m |= b0<<uint(i) | b1<<uint(i+1) | b2<<uint(i+2) | b3<<uint(i+3)
		}
		mask[w] = m
	}
	if t := n & 63; t != 0 {
		var m uint64
		for i, v := range vals[words<<6:] {
			if v == want {
				m |= 1 << uint(i)
			}
		}
		mask[words] = m
	}
}

// ---------------------------------------------------------------------------
// CmpEqI32: dictionary-code equality compare → bitmask.
//
// Same mask contract as CmpEqF64. NULL codes (negative) never match a
// non-negative want.

// CmpEqI32Ref is the reference implementation of CmpEqI32.
func CmpEqI32Ref(codes []int32, want int32, mask []uint64) {
	for w := range mask[:MaskWords(len(codes))] {
		mask[w] = 0
	}
	for i, c := range codes {
		if c == want {
			mask[i>>6] |= 1 << uint(i&63)
		}
	}
}

// CmpEqI32Unrolled builds each mask word in a register with a branchless
// equal-to-bit conversion (codes[i]^want underflows to the top bit only
// when equal), four lanes per step.
func CmpEqI32Unrolled(codes []int32, want int32, mask []uint64) {
	n := len(codes)
	words := n >> 6
	uw := uint32(want)
	for w := 0; w < words; w++ {
		blk := codes[w<<6 : w<<6+64 : w<<6+64]
		var m uint64
		for i := 0; i < 64; i += 4 {
			b0 := (uint64(uint32(blk[i])^uw) - 1) >> 63
			b1 := (uint64(uint32(blk[i+1])^uw) - 1) >> 63
			b2 := (uint64(uint32(blk[i+2])^uw) - 1) >> 63
			b3 := (uint64(uint32(blk[i+3])^uw) - 1) >> 63
			m |= b0<<uint(i) | b1<<uint(i+1) | b2<<uint(i+2) | b3<<uint(i+3)
		}
		mask[w] = m
	}
	if t := n & 63; t != 0 {
		var m uint64
		for i, c := range codes[words<<6:] {
			if c == want {
				m |= 1 << uint(i)
			}
		}
		mask[words] = m
	}
}

// ---------------------------------------------------------------------------
// SelFromMask: mask → ascending selection-vector compaction.
//
// Appends the index of every set bit among the first n bits of mask to
// sel[0:] in ascending order and returns the count. sel must have room
// for n entries. Bits at or beyond n are ignored.

// SelFromMaskRef is the reference implementation of SelFromMask.
func SelFromMaskRef(mask []uint64, n int, sel []int32) int {
	c := 0
	for i := 0; i < n; i++ {
		if mask[i>>6]>>uint(i&63)&1 == 1 {
			sel[c] = int32(i)
			c++
		}
	}
	return c
}

// SelFromMaskUnrolled extracts set bits a word at a time with
// trailing-zero counts, skipping empty words entirely.
func SelFromMaskUnrolled(mask []uint64, n int, sel []int32) int {
	c := 0
	words := n >> 6
	for w := 0; w < words; w++ {
		m := mask[w]
		base := int32(w << 6)
		for m != 0 {
			sel[c] = base + int32(bits.TrailingZeros64(m))
			c++
			m &= m - 1
		}
	}
	if t := n & 63; t != 0 {
		m := mask[words] & (1<<uint(t) - 1)
		base := int32(words << 6)
		for m != 0 {
			sel[c] = base + int32(bits.TrailingZeros64(m))
			c++
			m &= m - 1
		}
	}
	return c
}

// ---------------------------------------------------------------------------
// GatherF64 / GatherI32: selection-vector gather (dst[i] = src[idx[i]]).
// Also serves the join view's rowMap block reads, which have exactly this
// shape. idx entries must be valid indexes into src.
//
// dst and src may alias only for in-place compaction with an ascending
// selection vector (idx[i] >= i for all i, as SelFromMask produces): each
// source element is then read before position i could have overwritten it.
// Any other overlap is undefined, and implementations are free to process
// entries in any order within that contract.

// GatherF64Ref is the reference implementation of GatherF64.
func GatherF64Ref(dst, src []float64, idx []int32) {
	for i, r := range idx {
		dst[i] = src[r]
	}
}

// GatherF64Unrolled is the unrolled, bounds-check-eliminated variant.
func GatherF64Unrolled(dst, src []float64, idx []int32) {
	n := len(idx)
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		r0, r1, r2, r3 := idx[i], idx[i+1], idx[i+2], idx[i+3]
		v0, v1, v2, v3 := src[r0], src[r1], src[r2], src[r3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = v0, v1, v2, v3
	}
	for ; i < n; i++ {
		dst[i] = src[idx[i]]
	}
}

// GatherI32Ref is the reference implementation of GatherI32.
func GatherI32Ref(dst, src []int32, idx []int32) {
	for i, r := range idx {
		dst[i] = src[r]
	}
}

// GatherI32Unrolled is the unrolled, bounds-check-eliminated variant.
func GatherI32Unrolled(dst, src []int32, idx []int32) {
	n := len(idx)
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		r0, r1, r2, r3 := idx[i], idx[i+1], idx[i+2], idx[i+3]
		v0, v1, v2, v3 := src[r0], src[r1], src[r2], src[r3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = v0, v1, v2, v3
	}
	for ; i < n; i++ {
		dst[i] = src[idx[i]]
	}
}

// ---------------------------------------------------------------------------
// LookupCodes: dictionary-code gather through a lookup table.
//
// dst[i] = lut[codes[i]] for codes[i] >= 0, def for NULL (negative)
// codes. Non-negative codes must be < len(lut).

// LookupCodesRef is the reference implementation of LookupCodes.
func LookupCodesRef(dst, codes, lut []int32, def int32) {
	for i, c := range codes {
		if c >= 0 {
			dst[i] = lut[c]
		} else {
			dst[i] = def
		}
	}
}

// LookupCodesUnrolled is the unrolled, bounds-check-eliminated variant.
func LookupCodesUnrolled(dst, codes, lut []int32, def int32) {
	n := len(codes)
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		c0, c1, c2, c3 := codes[i], codes[i+1], codes[i+2], codes[i+3]
		v0, v1, v2, v3 := def, def, def, def
		if c0 >= 0 {
			v0 = lut[c0]
		}
		if c1 >= 0 {
			v1 = lut[c1]
		}
		if c2 >= 0 {
			v2 = lut[c2]
		}
		if c3 >= 0 {
			v3 = lut[c3]
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = v0, v1, v2, v3
	}
	for ; i < n; i++ {
		if c := codes[i]; c >= 0 {
			dst[i] = lut[c]
		} else {
			dst[i] = def
		}
	}
}

// ---------------------------------------------------------------------------
// AndWords / AndPopcount / Popcount: bitmap combination and counting
// (predicate-mask intersection, distinct-bitset cardinality).

// AndWordsRef is the reference implementation of AndWords
// (dst[i] &= src[i]; lengths must match).
func AndWordsRef(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

// AndWordsUnrolled is the unrolled, bounds-check-eliminated variant.
func AndWordsUnrolled(dst, src []uint64) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] &= src[i]
		dst[i+1] &= src[i+1]
		dst[i+2] &= src[i+2]
		dst[i+3] &= src[i+3]
	}
	for ; i < n; i++ {
		dst[i] &= src[i]
	}
}

// AndPopcountRef is the reference implementation of AndPopcount
// (popcount of a AND b; lengths must match).
func AndPopcountRef(a, b []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// AndPopcountUnrolled is the unrolled, bounds-check-eliminated variant.
func AndPopcountUnrolled(a, b []uint64) int {
	n := len(a)
	b = b[:n]
	c0, c1 := 0, 0
	i := 0
	for ; i+2 <= n; i += 2 {
		c0 += bits.OnesCount64(a[i] & b[i])
		c1 += bits.OnesCount64(a[i+1] & b[i+1])
	}
	for ; i < n; i++ {
		c0 += bits.OnesCount64(a[i] & b[i])
	}
	return c0 + c1
}

// PopcountRef is the reference implementation of Popcount.
func PopcountRef(words []uint64) int {
	c := 0
	for _, w := range words {
		c += bits.OnesCount64(w)
	}
	return c
}

// PopcountUnrolled is the unrolled variant with two dependency chains.
func PopcountUnrolled(words []uint64) int {
	n := len(words)
	c0, c1 := 0, 0
	i := 0
	for ; i+2 <= n; i += 2 {
		c0 += bits.OnesCount64(words[i])
		c1 += bits.OnesCount64(words[i+1])
	}
	for ; i < n; i++ {
		c0 += bits.OnesCount64(words[i])
	}
	return c0 + c1
}

// ---------------------------------------------------------------------------
// MinMaxF64: NaN-skipping min/max fold (zone-map construction).
//
// Returns (+Inf, -Inf) for an empty or all-NaN input. When both +0 and
// -0 are present, implementations may return either representation of
// zero (callers must not depend on the sign of a zero bound; zone-map
// containment treats them as equal). This is the one primitive whose
// variants are allowed to differ from the reference below == equality.

// MinMaxF64Ref is the reference implementation of MinMaxF64: a strict
// first-wins row-order fold.
func MinMaxF64Ref(vals []float64) (mn, mx float64) {
	mn = inf
	mx = negInf
	for _, v := range vals {
		if v != v {
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// MinMaxF64Unrolled folds two independent accumulator pairs to break the
// compare dependency chain, then merges them.
func MinMaxF64Unrolled(vals []float64) (mn, mx float64) {
	mn0, mx0 := inf, negInf
	mn1, mx1 := inf, negInf
	n := len(vals)
	i := 0
	for ; i+2 <= n; i += 2 {
		v0, v1 := vals[i], vals[i+1]
		if v0 < mn0 {
			mn0 = v0
		}
		if v0 > mx0 {
			mx0 = v0
		}
		if v1 < mn1 {
			mn1 = v1
		}
		if v1 > mx1 {
			mx1 = v1
		}
	}
	if i < n {
		v := vals[i]
		if v < mn0 {
			mn0 = v
		}
		if v > mx0 {
			mx0 = v
		}
	}
	if mn1 < mn0 {
		mn0 = mn1
	}
	if mx1 > mx0 {
		mx0 = mx1
	}
	return mn0, mx0
}

var (
	inf    = math.Inf(1)
	negInf = math.Inf(-1)
)

// ---------------------------------------------------------------------------
// CountNonNegI32: non-NULL count of a dictionary-code block (NULLs are
// negative codes).

// CountNonNegI32Ref is the reference implementation of CountNonNegI32.
func CountNonNegI32Ref(codes []int32) int {
	c := 0
	for _, v := range codes {
		if v >= 0 {
			c++
		}
	}
	return c
}

// CountNonNegI32Unrolled counts sign bits branchlessly.
func CountNonNegI32Unrolled(codes []int32) int {
	n := len(codes)
	neg := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		neg += int(uint32(codes[i])>>31) + int(uint32(codes[i+1])>>31) +
			int(uint32(codes[i+2])>>31) + int(uint32(codes[i+3])>>31)
	}
	for ; i < n; i++ {
		neg += int(uint32(codes[i]) >> 31)
	}
	return n - neg
}

// ---------------------------------------------------------------------------
// AccumulateF64: SoA sum/count/min/max scatter into gathered cells.
//
// For each row i, in strictly ascending row order:
//
//	ix := offs[i]; v := vals[i]
//	nonNull[ix]++; sum[ix] += v
//	minv[ix] = min-by-strict-<; maxv[ix] = max-by-strict->
//
// This is the NULL-free fast path: callers must have established that no
// vals entry is NaN. Row order is a hard contract (float sums must match
// the scalar kernel bit for bit), so no SIMD variant exists and none
// should be added.

// AccumulateF64Ref is the reference implementation of AccumulateF64.
func AccumulateF64Ref(offs []int32, vals []float64, nonNull []int64, sum, minv, maxv []float64) {
	for i, ix := range offs {
		v := vals[i]
		nonNull[ix]++
		sum[ix] += v
		if v < minv[ix] {
			minv[ix] = v
		}
		if v > maxv[ix] {
			maxv[ix] = v
		}
	}
}

// AccumulateF64Unrolled keeps strict row order (offsets may repeat, and
// float sums must not be reassociated) but hoists bounds checks and
// pre-loads the next row's offset/value to hide scatter latency.
func AccumulateF64Unrolled(offs []int32, vals []float64, nonNull []int64, sum, minv, maxv []float64) {
	n := len(offs)
	vals = vals[:n]
	i := 0
	for ; i+2 <= n; i += 2 {
		ix0, v0 := offs[i], vals[i]
		ix1, v1 := offs[i+1], vals[i+1]
		nonNull[ix0]++
		sum[ix0] += v0
		if v0 < minv[ix0] {
			minv[ix0] = v0
		}
		if v0 > maxv[ix0] {
			maxv[ix0] = v0
		}
		nonNull[ix1]++
		sum[ix1] += v1
		if v1 < minv[ix1] {
			minv[ix1] = v1
		}
		if v1 > maxv[ix1] {
			maxv[ix1] = v1
		}
	}
	if i < n {
		ix, v := offs[i], vals[i]
		nonNull[ix]++
		sum[ix] += v
		if v < minv[ix] {
			minv[ix] = v
		}
		if v > maxv[ix] {
			maxv[ix] = v
		}
	}
}
