//go:build amd64 && !noasm

package vec

// Hand-rolled CPU feature detection (cpuid_amd64.s). The stdlib keeps
// internal/cpu to itself and this module carries no dependencies, so we
// probe the two leaves we need directly.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// AVX2 kernels (vec_amd64.s). Each processes only whole vector groups;
// the Go wrappers below handle tails and empty inputs.
func cmpEqF64Asm(vals *float64, want float64, mask *uint64, words int)
func cmpEqI32Asm(codes *int32, want int32, mask *uint64, words int)
func countNegI32Asm(codes *int32, octs int) int64
func andPopcountAsm(a, b *uint64, words int) int64
func minMaxF64Asm(vals *float64, quads int, out *[8]float64)

var asmLevel = "go"

// hasAVX2 reports AVX2 plus POPCNT, with AVX enabled and the OS saving
// xmm/ymm state (OSXSAVE + XCR0 bits 1..2) — the full set the assembly
// kernels rely on.
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const (
		popcnt  = 1 << 23
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c&popcnt == 0 || c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0
}

func init() {
	if !hasAVX2() {
		return
	}
	asmLevel = "avx2"
	CmpEqF64 = cmpEqF64AVX2
	CmpEqI32 = cmpEqI32AVX2
	CountNonNegI32 = countNonNegI32AVX2
	AndPopcount = andPopcountAVX2
	MinMaxF64 = minMaxF64AVX2
}

func cmpEqF64AVX2(vals []float64, want float64, mask []uint64) {
	n := len(vals)
	words := n >> 6
	if words > 0 {
		cmpEqF64Asm(&vals[0], want, &mask[0], words)
	}
	if t := n & 63; t != 0 {
		var m uint64
		for i, v := range vals[words<<6:] {
			if v == want {
				m |= 1 << uint(i)
			}
		}
		mask[words] = m
	}
}

func cmpEqI32AVX2(codes []int32, want int32, mask []uint64) {
	n := len(codes)
	words := n >> 6
	if words > 0 {
		cmpEqI32Asm(&codes[0], want, &mask[0], words)
	}
	if t := n & 63; t != 0 {
		var m uint64
		for i, c := range codes[words<<6:] {
			if c == want {
				m |= 1 << uint(i)
			}
		}
		mask[words] = m
	}
}

func countNonNegI32AVX2(codes []int32) int {
	n := len(codes)
	octs := n >> 3
	neg := 0
	if octs > 0 {
		neg = int(countNegI32Asm(&codes[0], octs))
	}
	for _, c := range codes[octs<<3:] {
		if c < 0 {
			neg++
		}
	}
	return n - neg
}

func andPopcountAVX2(a, b []uint64) int {
	n := len(a)
	b = b[:n]
	if n == 0 {
		return 0
	}
	return int(andPopcountAsm(&a[0], &b[0], n))
}

func minMaxF64AVX2(vals []float64) (mn, mx float64) {
	n := len(vals)
	quads := n >> 2
	mn, mx = inf, negInf
	if quads > 0 {
		out := [8]float64{inf, inf, inf, inf, negInf, negInf, negInf, negInf}
		minMaxF64Asm(&vals[0], quads, &out)
		for i := 0; i < 4; i++ {
			if out[i] < mn {
				mn = out[i]
			}
			if out[4+i] > mx {
				mx = out[4+i]
			}
		}
	}
	for _, v := range vals[quads<<2:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}
