package vec

import (
	"math/rand"
	"testing"
)

// Benchmarks compare the three flavors of each primitive on one
// kernel-block of rows (4096, matching sqlexec's kernelBlockRows).
// cmd/benchcube -kernels runs the same shapes and records ns/row to
// BENCH_kernel.json; these exist so `go test -bench` smoke keeps all
// variants executing.
const benchRows = 4096

func benchData() (vals []float64, codes []int32, mask []uint64, sel []int32) {
	rng := rand.New(rand.NewSource(42))
	vals = make([]float64, benchRows)
	codes = make([]int32, benchRows)
	for i := range vals {
		vals[i] = float64(rng.Intn(16))
		codes[i] = int32(rng.Intn(16)) - 1
	}
	mask = make([]uint64, MaskWords(benchRows))
	sel = make([]int32, benchRows)
	return
}

func BenchmarkCmpEqF64(b *testing.B) {
	vals, _, mask, _ := benchData()
	run := func(name string, fn func([]float64, float64, []uint64)) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			for i := 0; i < b.N; i++ {
				fn(vals, 7, mask)
			}
		})
	}
	run("ref", CmpEqF64Ref)
	run("unrolled", CmpEqF64Unrolled)
	run(Impl(), CmpEqF64)
}

func BenchmarkCmpEqI32(b *testing.B) {
	_, codes, mask, _ := benchData()
	run := func(name string, fn func([]int32, int32, []uint64)) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchRows * 4)
			for i := 0; i < b.N; i++ {
				fn(codes, 7, mask)
			}
		})
	}
	run("ref", CmpEqI32Ref)
	run("unrolled", CmpEqI32Unrolled)
	run(Impl(), CmpEqI32)
}

func BenchmarkSelFromMask(b *testing.B) {
	vals, _, mask, sel := benchData()
	CmpEqF64Ref(vals, 7, mask) // ~1/16 dense
	run := func(name string, fn func([]uint64, int, []int32) int) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn(mask, benchRows, sel)
			}
		})
	}
	run("ref", SelFromMaskRef)
	run("unrolled", SelFromMaskUnrolled)
	run(Impl(), SelFromMask)
}

func BenchmarkGatherF64(b *testing.B) {
	vals, _, _, sel := benchData()
	for i := range sel {
		sel[i] = int32((i * 7) % benchRows)
	}
	dst := make([]float64, benchRows)
	run := func(name string, fn func(dst, src []float64, idx []int32)) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			for i := 0; i < b.N; i++ {
				fn(dst, vals, sel)
			}
		})
	}
	run("ref", GatherF64Ref)
	run("unrolled", GatherF64Unrolled)
	run(Impl(), GatherF64)
}

func BenchmarkLookupCodes(b *testing.B) {
	_, codes, _, _ := benchData()
	lut := make([]int32, 16)
	dst := make([]int32, benchRows)
	run := func(name string, fn func(dst, codes, lut []int32, def int32)) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchRows * 4)
			for i := 0; i < b.N; i++ {
				fn(dst, codes, lut, -2)
			}
		})
	}
	run("ref", LookupCodesRef)
	run("unrolled", LookupCodesUnrolled)
	run(Impl(), LookupCodes)
}

func BenchmarkAndPopcount(b *testing.B) {
	vals, codes, mask, _ := benchData()
	m2 := make([]uint64, MaskWords(benchRows))
	CmpEqF64Ref(vals, 7, mask)
	CmpEqI32Ref(codes, 3, m2)
	run := func(name string, fn func(a, b []uint64) int) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn(mask, m2)
			}
		})
	}
	run("ref", AndPopcountRef)
	run("unrolled", AndPopcountUnrolled)
	run(Impl(), AndPopcount)
}

func BenchmarkMinMaxF64(b *testing.B) {
	vals, _, _, _ := benchData()
	run := func(name string, fn func([]float64) (float64, float64)) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			for i := 0; i < b.N; i++ {
				fn(vals)
			}
		})
	}
	run("ref", MinMaxF64Ref)
	run("unrolled", MinMaxF64Unrolled)
	run(Impl(), MinMaxF64)
}

func BenchmarkCountNonNegI32(b *testing.B) {
	_, codes, _, _ := benchData()
	run := func(name string, fn func([]int32) int) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchRows * 4)
			for i := 0; i < b.N; i++ {
				fn(codes)
			}
		})
	}
	run("ref", CountNonNegI32Ref)
	run("unrolled", CountNonNegI32Unrolled)
	run(Impl(), CountNonNegI32)
}

func BenchmarkAccumulateF64(b *testing.B) {
	vals, _, _, _ := benchData()
	offs := make([]int32, benchRows)
	for i := range offs {
		offs[i] = int32(i & 63)
	}
	nonNull := make([]int64, 64)
	sum := make([]float64, 64)
	minv := make([]float64, 64)
	maxv := make([]float64, 64)
	run := func(name string, fn func([]int32, []float64, []int64, []float64, []float64, []float64)) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			for i := 0; i < b.N; i++ {
				fn(offs, vals, nonNull, sum, minv, maxv)
			}
		})
	}
	run("ref", AccumulateF64Ref)
	run("unrolled", AccumulateF64Unrolled)
	run(Impl(), AccumulateF64)
}
