//go:build !amd64 || noasm

package vec

// asmLevel stays "go": no assembly kernels are linked in on non-amd64
// targets or under the `noasm` build tag, and the dispatched entry
// points keep their unrolled-Go defaults.
var asmLevel = "go"
