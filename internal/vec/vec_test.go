package vec

import (
	"math"
	"math/rand"
	"testing"
)

// Lengths straddling every unroll boundary in the package: the 4-wide
// and 2-wide Go unrolls, the 4/8-lane vector groups, and the 64-row
// mask words (including multi-word and empty inputs).
var lengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63, 64, 65, 66, 127, 128, 129, 191, 192, 193, 255, 256, 257, 300}

func randFloats(rng *rand.Rand, n int) []float64 {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0.0, math.Copysign(0, -1), 1.5, -1.5}
	vals := make([]float64, n)
	for i := range vals {
		switch rng.Intn(4) {
		case 0:
			vals[i] = specials[rng.Intn(len(specials))]
		case 1:
			vals[i] = float64(rng.Intn(8)) // dense duplicates so compares hit
		default:
			vals[i] = rng.NormFloat64() * 100
		}
	}
	return vals
}

func randCodes(rng *rand.Rand, n, card int, nullFrac float64) []int32 {
	codes := make([]int32, n)
	for i := range codes {
		if rng.Float64() < nullFrac {
			codes[i] = -1 - int32(rng.Intn(2)) // NULLs are any negative code
		} else {
			codes[i] = int32(rng.Intn(card))
		}
	}
	return codes
}

func maskEq(t *testing.T, name string, n int, got, want []uint64) {
	t.Helper()
	for w := 0; w < MaskWords(n); w++ {
		if got[w] != want[w] {
			t.Fatalf("%s: n=%d word %d: got %016x want %016x", name, n, w, got[w], want[w])
		}
	}
}

func TestCmpEqF64Variants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range lengths {
		for trial := 0; trial < 20; trial++ {
			vals := randFloats(rng, n)
			var want float64
			switch trial % 4 {
			case 0:
				want = math.NaN() // must match nothing
			case 1:
				want = 0.0 // must match -0 too
			case 2:
				want = float64(rng.Intn(8))
			default:
				if n > 0 {
					want = vals[rng.Intn(n)]
				}
			}
			ref := make([]uint64, MaskWords(n)+1)
			got := make([]uint64, MaskWords(n)+1)
			CmpEqF64Ref(vals, want, ref)
			CmpEqF64Unrolled(vals, want, got)
			maskEq(t, "unrolled", n, got, ref)
			for i := range got {
				got[i] = ^uint64(0) // dispatched impl must clear stale bits
			}
			CmpEqF64(vals, want, got)
			maskEq(t, Impl(), n, got, ref)
		}
	}
}

func TestCmpEqI32Variants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range lengths {
		for trial := 0; trial < 20; trial++ {
			codes := randCodes(rng, n, 6, 0.3)
			want := int32(rng.Intn(8) - 1) // includes -1: matching a NULL code is the caller's bug, but compare semantics stay exact
			ref := make([]uint64, MaskWords(n)+1)
			got := make([]uint64, MaskWords(n)+1)
			CmpEqI32Ref(codes, want, ref)
			CmpEqI32Unrolled(codes, want, got)
			maskEq(t, "unrolled", n, got, ref)
			for i := range got {
				got[i] = ^uint64(0)
			}
			CmpEqI32(codes, want, got)
			maskEq(t, Impl(), n, got, ref)
		}
	}
}

func TestSelFromMaskVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range lengths {
		for trial := 0; trial < 12; trial++ {
			mask := make([]uint64, MaskWords(n)+1)
			switch trial {
			case 0: // empty
			case 1: // full (plus garbage beyond n that must be ignored)
				for i := range mask {
					mask[i] = ^uint64(0)
				}
			default:
				for i := range mask {
					mask[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
				}
			}
			ref := make([]int32, n)
			got := make([]int32, n)
			nr := SelFromMaskRef(mask, n, ref)
			ng := SelFromMaskUnrolled(mask, n, got)
			if nr != ng {
				t.Fatalf("n=%d trial=%d: count mismatch ref=%d unrolled=%d", n, trial, nr, ng)
			}
			for i := 0; i < nr; i++ {
				if ref[i] != got[i] {
					t.Fatalf("n=%d trial=%d: sel[%d] ref=%d unrolled=%d", n, trial, i, ref[i], got[i])
				}
			}
			nd := SelFromMask(mask, n, got)
			if nd != nr {
				t.Fatalf("n=%d trial=%d: dispatched count %d want %d", n, trial, nd, nr)
			}
		}
	}
}

func TestGatherVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := randFloats(rng, 512)
	srcI := randCodes(rng, 512, 100, 0.2)
	for _, n := range lengths {
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(rng.Intn(len(src)))
		}
		ref := make([]float64, n)
		got := make([]float64, n)
		GatherF64Ref(ref, src, idx)
		GatherF64Unrolled(got, src, idx)
		for i := range ref {
			if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
				t.Fatalf("GatherF64 n=%d i=%d: %v != %v", n, i, got[i], ref[i])
			}
		}
		GatherF64(got, src, idx)
		for i := range ref {
			if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
				t.Fatalf("GatherF64 dispatched n=%d i=%d", n, i)
			}
		}
		refI := make([]int32, n)
		gotI := make([]int32, n)
		GatherI32Ref(refI, srcI, idx)
		GatherI32Unrolled(gotI, srcI, idx)
		for i := range refI {
			if refI[i] != gotI[i] {
				t.Fatalf("GatherI32 n=%d i=%d: %d != %d", n, i, gotI[i], refI[i])
			}
		}
		GatherI32(gotI, srcI, idx)
		for i := range refI {
			if refI[i] != gotI[i] {
				t.Fatalf("GatherI32 dispatched n=%d i=%d", n, i)
			}
		}
	}
}

func TestLookupCodesVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lut := make([]int32, 40)
	for i := range lut {
		lut[i] = int32(rng.Intn(1000))
	}
	for _, n := range lengths {
		for _, nullFrac := range []float64{0, 0.5, 1} { // incl. all-NULL blocks
			codes := randCodes(rng, n, len(lut), nullFrac)
			def := int32(rng.Intn(100) - 50)
			ref := make([]int32, n)
			got := make([]int32, n)
			LookupCodesRef(ref, codes, lut, def)
			LookupCodesUnrolled(got, codes, lut, def)
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("n=%d null=%.1f i=%d: %d != %d", n, nullFrac, i, got[i], ref[i])
				}
			}
			LookupCodes(got, codes, lut, def)
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("dispatched n=%d i=%d", n, i)
				}
			}
		}
	}
}

func TestBitmapVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, words := range []int{0, 1, 2, 3, 7, 8, 9, 17, 64} {
		for trial := 0; trial < 10; trial++ {
			a := make([]uint64, words)
			b := make([]uint64, words)
			for i := range a {
				a[i] = rng.Uint64()
				b[i] = rng.Uint64()
				if trial == 0 {
					b[i] = 0 // NULL-heavy: empty intersection
				}
				if trial == 1 {
					b[i] = ^uint64(0)
				}
			}
			if got, want := AndPopcountUnrolled(a, b), AndPopcountRef(a, b); got != want {
				t.Fatalf("AndPopcount unrolled words=%d: %d != %d", words, got, want)
			}
			if got, want := AndPopcount(a, b), AndPopcountRef(a, b); got != want {
				t.Fatalf("AndPopcount %s words=%d: %d != %d", Impl(), words, got, want)
			}
			if got, want := PopcountUnrolled(a), PopcountRef(a); got != want {
				t.Fatalf("Popcount words=%d: %d != %d", words, got, want)
			}
			if got, want := Popcount(a), PopcountRef(a); got != want {
				t.Fatalf("Popcount dispatched words=%d: %d != %d", words, got, want)
			}
			ad := append([]uint64(nil), a...)
			AndWordsRef(ad, b)
			au := append([]uint64(nil), a...)
			AndWordsUnrolled(au, b)
			a2 := append([]uint64(nil), a...)
			AndWords(a2, b)
			for i := range ad {
				if ad[i] != au[i] || ad[i] != a2[i] {
					t.Fatalf("AndWords words=%d i=%d", words, i)
				}
			}
		}
	}
}

func TestMinMaxF64Variants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(name string, vals []float64, mn, mx float64) {
		t.Helper()
		rmn, rmx := MinMaxF64Ref(vals)
		// == treats -0 and +0 as equal, which is exactly the documented
		// latitude MinMaxF64 variants have.
		if !(mn == rmn || (math.IsNaN(mn) && math.IsNaN(rmn))) || !(mx == rmx || (math.IsNaN(mx) && math.IsNaN(rmx))) {
			t.Fatalf("%s: n=%d got (%v,%v) want (%v,%v)", name, len(vals), mn, mx, rmn, rmx)
		}
	}
	for _, n := range lengths {
		for trial := 0; trial < 15; trial++ {
			var vals []float64
			switch trial {
			case 0:
				vals = make([]float64, n) // all zero
			case 1:
				vals = make([]float64, n)
				for i := range vals {
					vals[i] = math.NaN() // all NaN → (+Inf, -Inf)
				}
			case 2:
				vals = make([]float64, n)
				for i := range vals {
					vals[i] = math.Copysign(0, -1)
					if i%2 == 0 {
						vals[i] = 0
					}
				}
			default:
				vals = randFloats(rng, n)
			}
			mn, mx := MinMaxF64Unrolled(vals)
			check("unrolled", vals, mn, mx)
			mn, mx = MinMaxF64(vals)
			check(Impl(), vals, mn, mx)
		}
	}
}

func TestCountNonNegI32Variants(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range lengths {
		for _, nullFrac := range []float64{0, 0.1, 0.9, 1} {
			codes := randCodes(rng, n, 50, nullFrac)
			want := CountNonNegI32Ref(codes)
			if got := CountNonNegI32Unrolled(codes); got != want {
				t.Fatalf("unrolled n=%d null=%.1f: %d != %d", n, nullFrac, got, want)
			}
			if got := CountNonNegI32(codes); got != want {
				t.Fatalf("%s n=%d null=%.1f: %d != %d", Impl(), n, nullFrac, got, want)
			}
		}
	}
}

// TestAccumulateF64Variants pins the strict row-order contract: with
// colliding cells, float sums are only bit-identical if every variant
// adds rows in exactly the same order.
func TestAccumulateF64Variants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const cells = 7 // tiny lattice → heavy collisions
	for _, n := range lengths {
		for trial := 0; trial < 10; trial++ {
			offs := make([]int32, n)
			for i := range offs {
				offs[i] = int32(rng.Intn(cells))
			}
			vals := make([]float64, n)
			for i := range vals {
				// No NaNs: this is the NULL-free fast path by contract.
				vals[i] = rng.NormFloat64() * float64(rng.Intn(1000))
			}
			type state struct {
				nonNull []int64
				sum     []float64
				minv    []float64
				maxv    []float64
			}
			mk := func() *state {
				s := &state{
					nonNull: make([]int64, cells),
					sum:     make([]float64, cells),
					minv:    make([]float64, cells),
					maxv:    make([]float64, cells),
				}
				for i := 0; i < cells; i++ {
					s.minv[i] = math.Inf(1)
					s.maxv[i] = math.Inf(-1)
				}
				return s
			}
			ref, unr, dis := mk(), mk(), mk()
			AccumulateF64Ref(offs, vals, ref.nonNull, ref.sum, ref.minv, ref.maxv)
			AccumulateF64Unrolled(offs, vals, unr.nonNull, unr.sum, unr.minv, unr.maxv)
			AccumulateF64(offs, vals, dis.nonNull, dis.sum, dis.minv, dis.maxv)
			for i := 0; i < cells; i++ {
				for name, s := range map[string]*state{"unrolled": unr, "dispatched": dis} {
					if s.nonNull[i] != ref.nonNull[i] ||
						math.Float64bits(s.sum[i]) != math.Float64bits(ref.sum[i]) ||
						math.Float64bits(s.minv[i]) != math.Float64bits(ref.minv[i]) ||
						math.Float64bits(s.maxv[i]) != math.Float64bits(ref.maxv[i]) {
						t.Fatalf("%s n=%d cell %d: (%d,%v,%v,%v) != (%d,%v,%v,%v)", name, n, i,
							s.nonNull[i], s.sum[i], s.minv[i], s.maxv[i],
							ref.nonNull[i], ref.sum[i], ref.minv[i], ref.maxv[i])
					}
				}
			}
		}
	}
}

// TestMaskSelRoundTrip composes the compare and compaction primitives the
// way the pushdown path does: compare → AND → select → gather.
func TestMaskSelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range lengths {
		codes := randCodes(rng, n, 4, 0.2)
		vals := randFloats(rng, n)
		mask := make([]uint64, MaskWords(n))
		m2 := make([]uint64, MaskWords(n))
		CmpEqI32(codes, 2, mask)
		CmpEqF64(vals, 0.0, m2)
		AndWords(mask, m2)
		sel := make([]int32, n)
		cnt := SelFromMask(mask, n, sel)
		// Oracle: plain double-predicate scan.
		want := 0
		for i := 0; i < n; i++ {
			if codes[i] == 2 && vals[i] == 0.0 {
				if sel[want] != int32(i) {
					t.Fatalf("n=%d: sel[%d]=%d want %d", n, want, sel[want], i)
				}
				want++
			}
		}
		if cnt != want {
			t.Fatalf("n=%d: count %d want %d", n, cnt, want)
		}
		if cnt != AndPopcount(mask, mask) {
			t.Fatalf("n=%d: AndPopcount disagrees with SelFromMask", n)
		}
	}
}

func TestImplReportsConfiguration(t *testing.T) {
	switch Impl() {
	case "avx2", "go":
	default:
		t.Fatalf("Impl() = %q, want avx2 or go", Impl())
	}
}
